"""Command line entry point: regenerate the paper's artefacts.

Usage::

    python -m repro                           # list quick artefacts + help
    python -m repro table2                    # print one quick artefact
    python -m repro all                       # print every quick artefact

    python -m repro reproduce --list          # enumerate every experiment
    python -m repro reproduce fig5_energy_breakdown
    python -m repro reproduce fig4_accuracy --workers 3
    python -m repro reproduce --all --out results/
    python -m repro reproduce ablation_faults --no-cache
    python -m repro reproduce dse_sweep network_latency fault_sensitivity --workers 4

    python -m repro serve-bench               # serving benchmark (defaults)
    python -m repro serve-bench --model vgg_small --clients 8 --duration 2
    python -m repro serve-bench --backend exact --shards 4 --json

    python -m repro fleet-bench               # open-loop fleet benchmark
    python -m repro fleet-bench --models lenet mini_resnet --workers 4
    python -m repro fleet-bench --rate-multiplier 100 --sla-ms 25 --json
    python -m repro fleet-bench --policy cost_model --shards 2

    python -m repro trace-replay              # static vs cost-model on one trace
    python -m repro trace-replay --models lenet vgg_small --duration 2 --json

    python -m repro chaos-smoke --quick       # seeded fault-injection matrix
    python -m repro chaos-smoke --scenario table_bitflip worker_crash --json

The quick artefact names (``table1`` .. ``fig8``) are the legacy
renderers kept for interactive use; ``reproduce`` drives the unified
experiment engine (:mod:`repro.experiments`) with parallel sweeps,
content-addressed result caching and CSV/JSON artefact export;
``serve-bench`` compiles a model into an execution plan
(:mod:`repro.runtime`), stands up the micro-batching inference server
and drives it with closed-loop load, reporting p50/p99 latency and
samples/sec; ``fleet-bench`` stands up the multi-process
:class:`~repro.runtime.FleetServer` and floods it with open-loop
Poisson arrivals at a multiple of the closed-loop rate, reporting
p50/p99/p999 latency, shed counts and goodput under the SLA;
``trace-replay`` replays one deterministic Poisson+burst trace under
both scheduling policies (static knobs vs the cost-model
:class:`~repro.runtime.scheduler.SchedulingPolicy`) and compares
goodput with per-request byte parity asserted;
``chaos-smoke`` runs the seeded fault-injection matrix
(:mod:`repro.chaos.matrix`) against a live fleet and asserts the
fault-tolerance contract (zero accepted-then-dropped, 100% corruption
detection, post-recovery byte parity).
"""

from __future__ import annotations

import argparse
import sys

from .analysis.reporting import bar_chart, format_table, title
from .analysis.sweeps import fig5_rows, fig6_rows
from .arch.compare import fig7_tradeoff, fig8_breakdown, table2, table3_rows
from .core.config import table1_rows


def _render_table1() -> str:
    return title("Table I") + "\n" + format_table(table1_rows())


def _render_fig4() -> str:
    # Delegates to the registered experiment so the training pipeline
    # lives in one place and repeat invocations resolve from the cache.
    from .experiments import run_experiment

    rows = run_experiment("fig4_accuracy").rows
    return title("Fig. 4 (accuracy)") + "\n" + format_table(rows)


def _render_fig5() -> str:
    rows = fig5_rows()
    chart = bar_chart(
        [(f"{r['datatype']}/{r['bank']}/{r['design']}", float(r["total_pj"])) for r in rows],
        unit=" pJ",
    )
    return title("Fig. 5 (energy per multiplication)") + "\n" + chart


def _render_fig6() -> str:
    rows = fig6_rows()
    chart = bar_chart(
        [(f"{r['datatype']}/{r['bank']}", float(r["improvement_x"])) for r in rows], unit="x"
    )
    return title("Fig. 6 (improvement incl. exponent handling)") + "\n" + chart


def _render_fig7() -> str:
    points = sorted(fig7_tradeoff(), key=lambda p: p.cycles)
    rows = [
        {
            "design": p.name,
            "cycles": p.cycles,
            "area [mm2]": f"{p.area_mm2:.2f}",
            "PEs": p.total_pes,
        }
        for p in points
    ]
    return title("Fig. 7 (cycles vs area, VGG-8 conv1)") + "\n" + format_table(rows)


def _render_fig8() -> str:
    return title("Fig. 8 (area breakdown)") + "\n" + format_table(
        [
            {k: (f"{v:.3f}" if isinstance(v, float) else v) for k, v in row.items()}
            for row in fig8_breakdown()
        ]
    )


def _render_table2() -> str:
    return title("Table II") + "\n" + format_table(table2())


def _render_table3() -> str:
    return title("Table III") + "\n" + format_table(table3_rows())


ARTEFACTS = {
    "table1": _render_table1,
    "fig4": _render_fig4,
    "fig5": _render_fig5,
    "fig6": _render_fig6,
    "fig7": _render_fig7,
    "fig8": _render_fig8,
    "table2": _render_table2,
    "table3": _render_table3,
}


def _list_experiments() -> str:
    from .experiments import all_experiments

    lines = ["registered experiments (python -m repro reproduce <name>):", ""]
    width = max(len(e.name) for e in all_experiments())
    for exp in all_experiments():
        sweep = " x ".join(f"{k}[{len(v)}]" for k, v in exp.space.items()) or "single point"
        est = f"~{exp.est_seconds:.0f}s" if exp.est_seconds >= 1 else "<1s"
        lines.append(
            f"  {exp.name.ljust(width)}  {exp.artifact:<9}  {sweep:<24} {est:>6}  {exp.title}"
        )
    return "\n".join(lines)


def _parse_overrides(pairs: list[str]) -> dict[str, object]:
    """``--set key=value`` pairs, values parsed as JSON scalars if possible."""
    import json

    overrides: dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        try:
            overrides[key] = json.loads(raw)
        except ValueError:
            overrides[key] = raw
    return overrides


def reproduce(argv: list[str]) -> int:
    """The ``reproduce`` subcommand: drive the experiment engine."""
    from .experiments import (
        ResultCache,
        experiment_names,
        render_result,
        run_experiment,
        write_run,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro reproduce",
        description="Run registered paper experiments (parallel, cached).",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  python -m repro reproduce fig5_energy_breakdown\n"
            "  python -m repro reproduce fig4_accuracy --workers 3\n"
            "  python -m repro reproduce dse_sweep --workers 4 --out results/\n"
            "  python -m repro reproduce network_latency --set network=transformer_block\n"
            "  python -m repro reproduce fault_sensitivity --set dead_row_rate=0.01 --no-cache\n"
            "  python -m repro reproduce --all --workers 4 --out results/\n"
            "\n"
            "EXPERIMENTS.md documents every experiment with a copy-pasteable\n"
            "end-to-end command; ARCHITECTURE.md maps experiments to paper\n"
            "sections."
        ),
    )
    parser.add_argument("names", nargs="*", help="experiment names (see --list)")
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--workers", type=int, default=1, help="worker processes")
    parser.add_argument("--no-cache", action="store_true", help="bypass the result cache")
    parser.add_argument("--cache-dir", default=None, help="override the cache directory")
    parser.add_argument("--out", default=None, help="write CSV/JSON rows + manifest here")
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="pin a sweep axis or override a default parameter",
    )
    args = parser.parse_args(argv)

    if args.list:
        print(_list_experiments())
        return 0
    names = experiment_names() if args.all else args.names
    if not names:
        parser.print_usage()
        print(_list_experiments())
        return 0
    unknown = [n for n in names if n not in experiment_names()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("known:", ", ".join(experiment_names()), file=sys.stderr)
        return 2

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    overrides = _parse_overrides(args.overrides)
    if overrides:
        # Fail fast on a bad --set before any experiment runs or writes
        # artefacts: expansion is cheap, partial --all runs are not.
        from .experiments import get_experiment

        for name in names:
            try:
                get_experiment(name).points(overrides)
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 2
    for name in names:
        result = run_experiment(
            name,
            overrides=overrides or None,
            workers=args.workers,
            cache=cache,
            use_cache=not args.no_cache,
        )
        print(render_result(result))
        if args.out:
            paths = write_run(result, args.out)
            print(f"[wrote {paths['csv']}, {paths['json']}]")
    return 0


def _bench_error(exc: ValueError, as_json: bool) -> int:
    """Render a bench ValueError; unknown kernels get a structured form.

    In ``--json`` mode an :class:`~repro.core.kernels.UnknownKernelError`
    is emitted as a JSON object carrying the offending name and the
    registered kernel list, so callers script against data instead of
    parsing the message.
    """
    import json

    from .core.kernels import UnknownKernelError

    if as_json:
        payload: dict = {"error": str(exc)}
        if isinstance(exc, UnknownKernelError):
            payload["kernel"] = exc.kernel
            payload["registered_kernels"] = exc.registered
        print(json.dumps(payload, indent=2), file=sys.stderr)
    else:
        print(f"error: {exc}", file=sys.stderr)
    return 2


def _kernel_flag(parser: "argparse.ArgumentParser") -> None:
    """Add the shared ``--kernel`` option to a bench subcommand parser."""
    parser.add_argument(
        "--kernel",
        default=None,
        help=(
            "GEMM kernel tier: a registered kernel name (e.g. "
            "float_table_native, blas_factored) or 'auto' for the "
            "certified tier router; default is the bit-exact default tier"
        ),
    )


def _policy_flag(parser: "argparse.ArgumentParser") -> None:
    """Add the shared ``--policy`` option to a bench subcommand parser."""
    parser.add_argument(
        "--policy",
        default="static",
        choices=["static", "cost_model"],
        help=(
            "scheduling policy: 'static' serves with the configured knobs "
            "unchanged; 'cost_model' lets the architecture cost model pick "
            "micro-batch size, coalescing delay and shard split online"
        ),
    )


def serve_bench(argv: list[str]) -> int:
    """The ``serve-bench`` subcommand: benchmark the serving runtime."""
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro serve-bench",
        description=(
            "Compile a model into an execution plan, serve it through the "
            "micro-batching frontend and measure closed-loop latency/throughput."
        ),
        epilog=(
            "examples:\n"
            "  python -m repro serve-bench\n"
            "  python -m repro serve-bench --model vgg_small --clients 8 --duration 2\n"
            "  python -m repro serve-bench --backend exact --shards 4 --json\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--model",
        default="lenet",
        choices=["lenet", "vgg_small", "mini_resnet"],
        help="model zoo entry to serve",
    )
    parser.add_argument(
        "--backend",
        default="daism",
        choices=["daism", "quantized", "exact"],
        help="arithmetic backend the plan is compiled against",
    )
    _kernel_flag(parser)
    parser.add_argument("--clients", type=int, default=4, help="closed-loop client threads")
    parser.add_argument("--duration", type=float, default=1.0, help="measured seconds")
    parser.add_argument("--request-samples", type=int, default=4, help="samples per request")
    parser.add_argument("--max-batch", type=int, default=64, help="micro-batch sample threshold")
    parser.add_argument("--max-delay-ms", type=float, default=2.0, help="coalescing latency budget")
    parser.add_argument("--shards", type=int, default=1, help="engine shard threads")
    _policy_flag(parser)
    parser.add_argument(
        "--sla-ms",
        type=float,
        default=None,
        help="latency SLA the cost-model policy targets (default: none)",
    )
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    args = parser.parse_args(argv)

    from .runtime.serving_bench import serving_benchmark

    try:
        report = serving_benchmark(
            model=args.model,
            backend=args.backend,
            kernel=args.kernel,
            clients=args.clients,
            duration_s=args.duration,
            request_samples=args.request_samples,
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            shards=args.shards,
            policy=args.policy,
            sla_ms=args.sla_ms,
        )
    except ValueError as exc:  # bad kernel name, bad shard/batch config
        return _bench_error(exc, args.json)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(title(f"serve-bench: {report['model']} on {report['backend']}"))
    print(
        f"  plan: {report['plan_ops']} ops, shards={report['shards']},"
        f" max_batch={report['max_batch']}, delay budget {report['max_delay_ms']} ms,"
        f" policy={report['policy']}"
    )
    native = report["native_tier"]
    print(
        f"  tier: kernel={report['kernel']}"
        f" -> plan kernels {', '.join(report['plan_kernels']) or '-'}"
        f" (native backend: {native['backend']})"
    )
    load = report["load"]
    print(
        f"  {load['requests']} requests / {load['samples']} samples in"
        f" {load['duration_s']}s from {load['clients']} closed-loop clients"
    )
    print(
        f"  latency p50 {load['p50_ms']} ms | p99 {load['p99_ms']} ms |"
        f" mean {load['mean_ms']} ms"
    )
    print(
        f"  throughput {load['samples_per_s']} samples/s"
        f" (mean micro-batch {load['mean_batch_samples']} samples)"
    )
    return 0


def fleet_bench(argv: list[str]) -> int:
    """The ``fleet-bench`` subcommand: open-loop multi-process benchmark."""
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro fleet-bench",
        description=(
            "Stand up a multi-process serving fleet and flood it with "
            "open-loop Poisson arrivals at a multiple of the measured "
            "closed-loop rate; report tail latency, shed counts and "
            "goodput under the SLA."
        ),
        epilog=(
            "examples:\n"
            "  python -m repro fleet-bench\n"
            "  python -m repro fleet-bench --models lenet mini_resnet --workers 4\n"
            "  python -m repro fleet-bench --rate-multiplier 100 --sla-ms 25 --json\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=["lenet"],
        choices=["lenet", "vgg_small", "mini_resnet"],
        help="model zoo entries served concurrently (round-robin traffic)",
    )
    parser.add_argument(
        "--backend",
        default="daism",
        choices=["daism", "quantized", "exact"],
        help="arithmetic backend workers compile their plans against",
    )
    _kernel_flag(parser)
    parser.add_argument("--workers", type=int, default=2, help="worker processes per model")
    parser.add_argument("--duration", type=float, default=1.0, help="open-loop seconds")
    parser.add_argument(
        "--rate-rps",
        type=float,
        default=None,
        help="explicit offered request rate (skips closed-loop calibration scaling)",
    )
    parser.add_argument(
        "--rate-multiplier",
        type=float,
        default=10.0,
        help="offered rate as a multiple of the measured closed-loop rate",
    )
    parser.add_argument("--request-samples", type=int, default=4, help="samples per request")
    parser.add_argument("--max-batch", type=int, default=64, help="micro-batch sample threshold")
    parser.add_argument("--max-delay-ms", type=float, default=2.0, help="coalescing latency budget")
    parser.add_argument(
        "--max-queue-samples", type=int, default=256, help="admission queue depth per model"
    )
    parser.add_argument("--sla-ms", type=float, default=50.0, help="latency SLA for goodput")
    parser.add_argument("--shards", type=int, default=1, help="engine shard threads per worker")
    _policy_flag(parser)
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    args = parser.parse_args(argv)

    from .runtime.serving_bench import open_loop_fleet_benchmark

    try:
        report = open_loop_fleet_benchmark(
            models=args.models,
            backend=args.backend,
            kernel=args.kernel,
            workers=args.workers,
            duration_s=args.duration,
            rate_rps=args.rate_rps,
            rate_multiplier=args.rate_multiplier,
            request_samples=args.request_samples,
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            max_queue_samples=args.max_queue_samples,
            sla_ms=args.sla_ms,
            shards=args.shards,
            policy=args.policy,
        )
    except ValueError as exc:
        return _bench_error(exc, args.json)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(title(f"fleet-bench: {', '.join(report['models'])} on {report['backend']}"))
    print(
        f"  fleet: {report['workers']} worker(s)/model, max_batch={report['max_batch']},"
        f" queue {report['max_queue_samples']} samples, SLA {report['sla_ms']} ms,"
        f" shards={report['shards']}, policy={report['policy']}"
    )
    native = report["native_tier"]
    print(
        f"  tier: kernel={report['kernel']}"
        f" -> plan kernels {', '.join(report['plan_kernels']) or '-'}"
        f" (native backend: {native['backend']})"
    )
    print(
        f"  offered {report['offered_requests']} requests @"
        f" {report['offered_rps']} req/s over {report['duration_s']}s"
        f" | accepted {report['accepted_requests']}"
        f" | shed {report['shed_requests']}"
    )
    print(
        f"  completed {report['completed_requests']}"
        f" | failed {report['failed_requests']}"
        f" | accepted-then-dropped {report['accepted_then_dropped']}"
        f" | worker restarts {report['worker_restarts']}"
    )
    print(
        f"  latency p50 {report['p50_ms']} ms | p99 {report['p99_ms']} ms |"
        f" p999 {report['p999_ms']} ms"
    )
    print(
        f"  goodput {report['goodput_samples_per_s']} samples/s under SLA"
        f" (raw {report['samples_per_s']} samples/s;"
        f" {report['goodput_vs_closed_loop_x']}x the"
        f" {report['closed_loop_samples_per_s']} samples/s closed-loop baseline)"
    )
    return 0


def trace_replay(argv: list[str]) -> int:
    """The ``trace-replay`` subcommand: static vs cost-model on one trace."""
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro trace-replay",
        description=(
            "Replay one deterministic Poisson+burst trace against two "
            "identically configured fleets — static scheduling knobs vs "
            "the cost-model policy — and compare goodput under a "
            "per-model SLA.  Byte parity between the two arms is "
            "asserted per request."
        ),
        epilog=(
            "examples:\n"
            "  python -m repro trace-replay\n"
            "  python -m repro trace-replay --models lenet vgg_small --duration 2\n"
            "  python -m repro trace-replay --seed 3 --json\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--models",
        nargs="+",
        default=["lenet", "vgg_small"],
        choices=["lenet", "vgg_small", "mini_resnet", "mobilenet_edge", "transformer_encoder"],
        help="model zoo entries in the trace (round-robin arrivals)",
    )
    parser.add_argument(
        "--backend",
        default="daism",
        choices=["daism", "quantized", "exact"],
        help="arithmetic backend workers compile their plans against",
    )
    _kernel_flag(parser)
    parser.add_argument("--workers", type=int, default=2, help="worker processes per model (static arm)")
    parser.add_argument("--duration", type=float, default=1.5, help="trace seconds")
    parser.add_argument(
        "--rate-multiplier",
        type=float,
        default=3.0,
        help="calm-phase rate as a multiple of the measured closed-loop rate",
    )
    parser.add_argument(
        "--burst-multiplier", type=float, default=4.0, help="burst-phase rate multiplier"
    )
    parser.add_argument("--request-samples", type=int, default=4, help="samples per request")
    parser.add_argument("--max-batch", type=int, default=64, help="micro-batch sample threshold")
    parser.add_argument("--max-delay-ms", type=float, default=2.0, help="coalescing latency budget")
    parser.add_argument(
        "--sla-ms",
        type=float,
        default=None,
        help="explicit SLA for every model (default: per-model, derived from calibration)",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace + data seed")
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    args = parser.parse_args(argv)

    from .runtime.serving_bench import replay_trace_benchmark

    try:
        report = replay_trace_benchmark(
            models=args.models,
            backend=args.backend,
            kernel=args.kernel,
            workers=args.workers,
            duration_s=args.duration,
            rate_multiplier=args.rate_multiplier,
            burst_multiplier=args.burst_multiplier,
            request_samples=args.request_samples,
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            sla_ms=args.sla_ms,
            seed=args.seed,
        )
    except ValueError as exc:
        return _bench_error(exc, args.json)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(title(f"trace-replay: {', '.join(report['models'])} on {report['backend']}"))
    trace = report["trace"]
    print(
        f"  trace: {trace['requests']} requests over {trace['duration_s']}s @"
        f" {trace['rate_rps']} req/s calm, x{trace['burst_multiplier']} bursts,"
        f" seed {trace['seed']}"
    )
    print(
        f"  SLA (ms): "
        + ", ".join(f"{m}={v}" for m, v in report["sla_ms"].items())
        + f" | batch cap {report['max_batch']}"
        f" (byte-stable window {report['byte_stable_window']})"
    )
    for arm in ("static", "cost_model"):
        row = report[arm]
        workers = ",".join(str(w) for w in row["workers_per_model"].values())
        print(
            f"  {arm:>10}: goodput {row['goodput_samples_per_s']} samples/s"
            f" | accepted {row['accepted_requests']}/{row['offered_requests']}"
            f" | p50 {row['p50_ms']} ms p99 {row['p99_ms']} ms"
            f" | workers/model {workers}"
        )
    parity = report["parity"]
    print(
        f"  parity: {parity['checked']} requests completed under both arms,"
        f" {parity['mismatches']} hash mismatches"
        f" | goodput ratio {report['goodput_ratio']}"
    )
    return 0


def chaos_smoke(argv: list[str]) -> int:
    """The ``chaos-smoke`` subcommand: run the seeded injection matrix."""
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos-smoke",
        description=(
            "Run the seeded fault-injection matrix against a live fleet "
            "behind the TCP frontend: every fault site and their pairwise "
            "combinations, asserting zero accepted-then-dropped, 100%% "
            "corruption detection and post-recovery byte parity."
        ),
        epilog=(
            "examples:\n"
            "  python -m repro chaos-smoke --quick\n"
            "  python -m repro chaos-smoke --scenario table_bitflip worker_crash\n"
            "  python -m repro chaos-smoke --json\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--quick", action="store_true", help="small request counts (CI smoke mode)"
    )
    parser.add_argument("--seed", type=int, default=0, help="injection seed")
    parser.add_argument(
        "--scenario",
        nargs="+",
        default=None,
        metavar="NAME",
        help="run only these scenarios (default: the full matrix)",
    )
    parser.add_argument("--json", action="store_true", help="emit rows as JSON")
    args = parser.parse_args(argv)

    from .chaos.matrix import SCENARIOS, run_matrix

    if args.scenario:
        unknown = [s for s in args.scenario if s not in SCENARIOS]
        if unknown:
            print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
            print("known:", ", ".join(SCENARIOS), file=sys.stderr)
            return 2
    try:
        rows = run_matrix(quick=args.quick, seed=args.seed, scenarios=args.scenario)
    except AssertionError as exc:
        print(f"chaos invariant violated: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    print(title("chaos-smoke: seeded fault-injection matrix"))
    display = [
        {
            "scenario": r["scenario"],
            "accepted": r["accepted"],
            "completed": r["completed"],
            "failed (structured)": r["failed_structured"],
            "dropped": r["dropped"],
            "injected": r["injected"],
            "detected": "yes" if r["detected"] else "NO",
            "recovery ms": (
                f"{r['recovery_ms']:.1f}" if r["recovery_ms"] is not None else "-"
            ),
            "parity": "yes" if r["post_recovery_parity"] else "NO",
        }
        for r in rows
    ]
    print(format_table(display))
    print(f"\nall {len(rows)} scenario(s) hold the fault-tolerance contract")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "reproduce":
        return reproduce(argv[1:])
    if argv and argv[0] == "serve-bench":
        return serve_bench(argv[1:])
    if argv and argv[0] == "fleet-bench":
        return fleet_bench(argv[1:])
    if argv and argv[0] == "trace-replay":
        return trace_replay(argv[1:])
    if argv and argv[0] == "chaos-smoke":
        return chaos_smoke(argv[1:])
    if not argv:
        print("usage: python -m repro <artefact>|all")
        print("       python -m repro reproduce [--list] [<name> ...]")
        print("       python -m repro serve-bench [--model <name>] [--json]")
        print("       python -m repro fleet-bench [--models <name> ...] [--json]")
        print("       python -m repro trace-replay [--models <name> ...] [--json]")
        print("       python -m repro chaos-smoke [--quick] [--json]")
        print("artefacts:", ", ".join(ARTEFACTS))
        return 0
    targets = list(ARTEFACTS) if argv[0] == "all" else argv
    unknown = [t for t in targets if t not in ARTEFACTS]
    if unknown:
        print(f"unknown artefact(s): {', '.join(unknown)}", file=sys.stderr)
        print("artefacts:", ", ".join(ARTEFACTS), file=sys.stderr)
        print("(experiment names go through: python -m repro reproduce <name>)", file=sys.stderr)
        return 2
    for target in targets:
        print(ARTEFACTS[target]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
