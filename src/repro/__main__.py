"""Command line entry point: regenerate the paper's artefacts.

Usage::

    python -m repro                 # list available artefacts
    python -m repro table2          # print one artefact
    python -m repro all             # print everything (trains CNNs: slow)

Each artefact is the same output the corresponding benchmark prints; the
``fig4`` accuracy study trains three small CNNs and takes a couple of
minutes, everything else is seconds.
"""

from __future__ import annotations

import sys

from .analysis.reporting import bar_chart, format_table, title
from .analysis.sweeps import fig5_rows, fig6_rows
from .arch.compare import fig7_tradeoff, fig8_breakdown, table2, table3_rows
from .core.config import table1_rows


def _render_table1() -> str:
    return title("Table I") + "\n" + format_table(table1_rows())


def _render_fig4() -> str:
    from .core.config import PC3_TR
    from .formats.floatfmt import BFLOAT16
    from .nn.backend import daism_backend, exact_backend
    from .nn.data import shapes_dataset
    from .nn.models import model_zoo
    from .nn.train import accuracy_comparison, train

    data = shapes_dataset(n_train=448, n_test=192, size=16, seed=0)
    rows = []
    for name, model in model_zoo().items():
        train(model, data, epochs=10, batch_size=32, lr=0.05, seed=0)
        accs = accuracy_comparison(
            model,
            data,
            {"float32": exact_backend(), "bf16_pc3_tr": daism_backend(PC3_TR, BFLOAT16)},
        )
        rows.append({"model": name, **{k: f"{v:.3f}" for k, v in accs.items()}})
    return title("Fig. 4 (accuracy)") + "\n" + format_table(rows)


def _render_fig5() -> str:
    rows = fig5_rows()
    chart = bar_chart(
        [(f"{r['datatype']}/{r['bank']}/{r['design']}", float(r["total_pj"])) for r in rows],
        unit=" pJ",
    )
    return title("Fig. 5 (energy per multiplication)") + "\n" + chart


def _render_fig6() -> str:
    rows = fig6_rows()
    chart = bar_chart(
        [(f"{r['datatype']}/{r['bank']}", float(r["improvement_x"])) for r in rows], unit="x"
    )
    return title("Fig. 6 (improvement incl. exponent handling)") + "\n" + chart


def _render_fig7() -> str:
    points = sorted(fig7_tradeoff(), key=lambda p: p.cycles)
    rows = [
        {
            "design": p.name,
            "cycles": p.cycles,
            "area [mm2]": f"{p.area_mm2:.2f}",
            "PEs": p.total_pes,
        }
        for p in points
    ]
    return title("Fig. 7 (cycles vs area, VGG-8 conv1)") + "\n" + format_table(rows)


def _render_fig8() -> str:
    return title("Fig. 8 (area breakdown)") + "\n" + format_table(
        [
            {k: (f"{v:.3f}" if isinstance(v, float) else v) for k, v in row.items()}
            for row in fig8_breakdown()
        ]
    )


def _render_table2() -> str:
    return title("Table II") + "\n" + format_table(table2())


def _render_table3() -> str:
    return title("Table III") + "\n" + format_table(table3_rows())


ARTEFACTS = {
    "table1": _render_table1,
    "fig4": _render_fig4,
    "fig5": _render_fig5,
    "fig6": _render_fig6,
    "fig7": _render_fig7,
    "fig8": _render_fig8,
    "table2": _render_table2,
    "table3": _render_table3,
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro <artefact>|all")
        print("artefacts:", ", ".join(ARTEFACTS))
        return 0
    targets = list(ARTEFACTS) if argv[0] == "all" else argv
    unknown = [t for t in targets if t not in ARTEFACTS]
    if unknown:
        print(f"unknown artefact(s): {', '.join(unknown)}", file=sys.stderr)
        print("artefacts:", ", ".join(ARTEFACTS), file=sys.stderr)
        return 2
    for target in targets:
        print(ARTEFACTS[target]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
