"""Pre-loading cost analysis (Sec. V-B2's amortisation claim).

Storing a kernel element costs several wordline *writes* (all its
partial-product/pre-computed lines).  The paper argues this is
negligible: "each input is reused for a very large number of kernel
elements and each kernel element is reused for thousands of inputs,
making the cost of any pre-loading negligible".  This module quantifies
that claim for any design/layer pair — write events vs read events and
the energy ratio between them.
"""

from __future__ import annotations

import dataclasses

from ..energy.cacti_lite import CactiLite
from .daism import DaismDesign
from .workloads import ConvLayer

__all__ = ["PreloadReport", "preload_analysis"]


@dataclasses.dataclass(frozen=True)
class PreloadReport:
    """Load-vs-compute accounting for one layer on one design."""

    layer_name: str
    load_row_writes: int
    compute_row_reads: int
    kernel_element_reuse: float
    input_element_reuse: float
    load_energy_uj: float
    compute_energy_uj: float

    @property
    def read_write_ratio(self) -> float:
        """Compute reads per load write — the amortisation factor."""
        return self.compute_row_reads / self.load_row_writes if self.load_row_writes else 0.0

    @property
    def load_energy_fraction(self) -> float:
        """Share of total SRAM energy spent on pre-loading."""
        total = self.load_energy_uj + self.compute_energy_uj
        return self.load_energy_uj / total if total else 0.0


def preload_analysis(
    design: DaismDesign, layer: ConvLayer, batch: int = 1, cacti: CactiLite | None = None
) -> PreloadReport:
    """Quantify the pre-loading cost of one layer on one design.

    ``batch`` models the paper's amortisation lever: the kernel lines are
    written once per pass while every image in the batch re-reads them —
    "when batch size is large during inference, it amortizes the cost of
    populating SRAM with the shifted bit patterns" (Sec. V-D).  Layers
    with little per-image reuse (the FC tail) depend on this.
    """
    if batch < 1:
        raise ValueError("batch must be positive")
    cacti = cacti or CactiLite()
    mapping = design.map_conv(layer)

    # Loading writes every logical line of every element row, once per pass.
    lines = design.layout.logical_lines
    load_writes = mapping.rows_total * lines * mapping.passes
    compute_reads = mapping.total_activations * mapping.passes * batch

    side = design.side_bits
    write_pj = cacti.row_write_energy_pj(side, side)
    read_pj = cacti.row_read_energy_pj(side, side)

    # Reuse factors the paper quotes: products per kernel element and per
    # input element.
    kernel_reuse = mapping.macs * batch / layer.kernel_elements
    input_reuse = mapping.macs / layer.input_elements

    return PreloadReport(
        layer_name=layer.name,
        load_row_writes=load_writes,
        compute_row_reads=compute_reads,
        kernel_element_reuse=kernel_reuse,
        input_element_reuse=input_reuse,
        load_energy_uj=load_writes * write_pj * 1e-6,
        compute_energy_uj=compute_reads * read_pj * 1e-6,
    )
