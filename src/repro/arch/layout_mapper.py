"""Mapping convolution kernels onto DAISM compute-SRAM rows.

The DAISM dataflow (Sec. IV-A): kernels are flattened into the SRAM; each
cycle, one input element per bank activates one *element row* and is
multiplied by every kernel element stored there.  How the kernel elements
are arranged into rows therefore decides utilisation and cycle count —
"some input elements must not be multiplied by all kernel elements, which
decreases utilization" (Sec. V-C2).

The mapper works in **slices**: a slice is the set of ``F`` (out-channel)
kernel weights sharing one ``(c, kh, kw)`` coordinate.  Every input pixel
of channel ``c`` that touches tap ``(kh, kw)`` needs exactly the whole
slice — so slice-aligned rows are either fully useful to an input or not
needed at all, which is what makes the banked designs run near 100 %
utilisation (Table II's 502.52 GOPS out of 512 peak).

Rows are distributed round-robin across banks at *row* granularity, so a
slice's rows may spread over several banks (different inputs stream into
different banks each cycle — the paper's multi-bank parallelism).

The resulting :class:`MappingResult` gives exact cycle counts (activation
events on the busiest bank), exact MAC counts, utilisation, and the
per-bank balance — everything Fig. 7 and Table II need.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from .workloads import ConvLayer

__all__ = ["MappingResult", "map_layer", "build_rows", "tap_masks"]


@dataclasses.dataclass(frozen=True)
class MappingResult:
    """Outcome of mapping one conv layer onto a banked DAISM array."""

    layer: ConvLayer
    banks: int
    pes_per_row: int
    rows_total: int
    rows_per_bank_max: int
    cycles: int
    macs: int
    utilization: float
    passes: int
    total_activations: int
    throughput_cycles: int
    throughput_utilization: float

    @property
    def total_pes(self) -> int:
        """PEs across all banks under this mapping."""
        return self.banks * self.pes_per_row

    def __str__(self) -> str:
        return (
            f"{self.layer.name} on {self.banks} bank(s) x {self.pes_per_row} PEs: "
            f"{self.cycles} cycles, util={self.utilization:.3f}"
        )


def tap_masks(layer: ConvLayer) -> dict[tuple[int, int], np.ndarray]:
    """Boolean (H, W) participation mask for every kernel tap."""
    masks: dict[tuple[int, int], np.ndarray] = {}
    h_idx = np.arange(layer.height)
    w_idx = np.arange(layer.width)
    for kh in range(layer.kernel):
        h_ok = _axis_mask(h_idx, kh, layer.stride, layer.padding, layer.out_height)
        for kw in range(layer.kernel):
            w_ok = _axis_mask(w_idx, kw, layer.stride, layer.padding, layer.out_width)
            masks[(kh, kw)] = h_ok[:, None] & w_ok[None, :]
    return masks


def _axis_mask(idx: np.ndarray, tap: int, stride: int, padding: int, out_size: int) -> np.ndarray:
    offset = idx - tap + padding
    return (offset >= 0) & (offset % stride == 0) & (offset // stride < out_size)


def build_rows(
    layer: ConvLayer, pes_per_row: int
) -> list[list[tuple[int, int, int, int]]]:
    """Arrange slices into element rows.

    Returns a list of rows; each row is a list of
    ``(channel, kh, kw, element_count)`` entries.  Slices are row-aligned:
    a slice of F elements takes ``ceil(F / pes)`` dedicated rows when it
    does not fit in one, and small slices are packed several per row.
    For grouped/depthwise layers F is ``filters_per_slice`` — an input
    channel only meets the filters of its own group.
    """
    f = layer.filters_per_slice
    slices = [
        (c, kh, kw)
        for c in range(layer.in_channels)
        for kh in range(layer.kernel)
        for kw in range(layer.kernel)
    ]
    rows: list[list[tuple[int, int, int, int]]] = []
    if f >= pes_per_row:
        full, rem = divmod(f, pes_per_row)
        for c, kh, kw in slices:
            rows.extend([[(c, kh, kw, pes_per_row)]] * full)
            if rem:
                rows.append([(c, kh, kw, rem)])
    else:
        per_row = pes_per_row // f
        current: list[tuple[int, int, int, int]] = []
        for c, kh, kw in slices:
            current.append((c, kh, kw, f))
            if len(current) == per_row:
                rows.append(current)
                current = []
        if current:
            rows.append(current)
    return rows


def _row_activations(
    row: list[tuple[int, int, int, int]], masks: dict[tuple[int, int], np.ndarray]
) -> int:
    """How many distinct input elements activate this row.

    An input ``(c, h, w)`` activates the row iff the row holds at least
    one slice of channel ``c`` whose tap is valid at ``(h, w)`` — inputs
    of different channels are different elements, so channel groups add.
    """
    by_channel: dict[int, list[tuple[int, int]]] = {}
    for c, kh, kw, _count in row:
        by_channel.setdefault(c, []).append((kh, kw))
    total = 0
    for taps in by_channel.values():
        union = masks[taps[0]]
        for tap in taps[1:]:
            union = union | masks[tap]
        total += int(union.sum())
    return total


def _assign_rows(
    activations: list[int], banks: int, distribution: str
) -> list[int]:
    """Assign each row index to a bank under the chosen policy.

    * ``round_robin`` — the paper-faithful default: row i goes to bank
      ``i % banks`` (trivial interconnect, near-balanced for uniform
      rows).
    * ``lpt`` — longest-processing-time greedy: heaviest rows first onto
      the least-loaded bank; the classic makespan heuristic, useful when
      border effects make row loads uneven.
    * ``block`` — contiguous chunks of rows per bank (cheapest wiring,
      worst balance); included as the ablation's lower bound.
    """
    n = len(activations)
    if distribution == "round_robin":
        return [i % banks for i in range(n)]
    if distribution == "block":
        per_bank = math.ceil(n / banks)
        return [min(i // per_bank, banks - 1) for i in range(n)]
    if distribution == "lpt":
        order = sorted(range(n), key=lambda i: -activations[i])
        loads = [0] * banks
        assignment = [0] * n
        for i in order:
            bank = loads.index(min(loads))
            assignment[i] = bank
            loads[bank] += activations[i]
        return assignment
    raise ValueError(f"unknown distribution {distribution!r}")


def map_layer(
    layer: ConvLayer,
    pes_per_row: int,
    banks: int = 1,
    bank_element_rows: int | None = None,
    distribution: str = "round_robin",
) -> MappingResult:
    """Map a conv layer and compute exact cycles/utilisation.

    Parameters
    ----------
    layer:
        The convolution shape.
    pes_per_row:
        Kernel-element slots per SRAM row of one bank.
    banks:
        Number of banks (each takes a distinct input per cycle).
    bank_element_rows:
        Element-row capacity of one bank; when the layer needs more, the
        kernel set is processed in multiple load passes (inputs are
        re-streamed per pass; the reload itself is amortised away by the
        operand reuse the paper quantifies).
    distribution:
        Row-to-bank assignment policy (see :func:`_assign_rows`).
    """
    if pes_per_row < 1 or banks < 1:
        raise ValueError("pes_per_row and banks must be positive")

    masks = tap_masks(layer)
    rows = build_rows(layer, pes_per_row)

    # Count activation events per row, then distribute rows over banks.
    activation_cache: dict[tuple, int] = {}
    activations = []
    for row in rows:
        key = tuple(sorted((c, kh, kw) for c, kh, kw, _cnt in row))
        if key not in activation_cache:
            activation_cache[key] = _row_activations(row, masks)
        activations.append(activation_cache[key])

    assignment = _assign_rows(activations, banks, distribution)
    bank_loads = [0] * banks
    bank_rows = [0] * banks
    for count, bank in zip(activations, assignment):
        bank_loads[bank] += count
        bank_rows[bank] += 1

    cycles = max(bank_loads)
    macs = sum(
        layer.valid_positions(kh, kw) * layer.filters_per_slice
        for kh in range(layer.kernel)
        for kw in range(layer.kernel)
    ) * layer.in_channels

    rows_per_bank_max = max(bank_rows)
    if bank_element_rows is not None:
        if bank_element_rows < 1:
            raise ValueError("bank_element_rows must be positive")
        passes = math.ceil(rows_per_bank_max / bank_element_rows)
    else:
        passes = 1

    total_pes = banks * pes_per_row
    utilization = macs / (cycles * total_pes) if cycles else 0.0

    # Steady-state (large-batch) figures: while one image's rows drain on
    # some banks, the next image's inputs fill the idle ones, so sustained
    # cycles per image are the *average* bank load, not the maximum.  The
    # paper leans on this ("when batch size is large during inference, it
    # amortizes...") and its GOPS figures sit at this utilisation level.
    total_activations = sum(bank_loads)
    throughput_cycles = math.ceil(total_activations / banks)
    throughput_utilization = (
        macs / (throughput_cycles * total_pes) if throughput_cycles else 0.0
    )
    return MappingResult(
        layer=layer,
        banks=banks,
        pes_per_row=pes_per_row,
        rows_total=len(rows),
        rows_per_bank_max=rows_per_bank_max,
        cycles=cycles,
        macs=macs,
        utilization=utilization,
        passes=passes,
        total_activations=total_activations,
        throughput_cycles=throughput_cycles,
        throughput_utilization=throughput_utilization,
    )
