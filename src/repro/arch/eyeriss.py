"""Analytic Eyeriss-class baseline (the paper's architecture comparator).

The paper evaluates DAISM "compared to the Eyeriss architecture [1] using
Accelergy and Timeloop [22]".  Neither tool is available offline; this
module provides an analytic row-stationary model with the same
first-order outputs those tools report for a dense conv layer:

* **cycles** — MACs over busy PEs, with the spatial utilisation a
  row-stationary mapping achieves on a 12x14 array (kernel rows must tile
  the 12 PE rows) and a temporal efficiency factor for pipeline/buffer
  stalls;
* **area** — the published 65 nm chip scaled to 45 nm gate-equivalents
  using the same ITRS factors as Table II, plus a component-level
  breakdown (168 PEs with scratchpads + a 108 kB global buffer).

Eyeriss constants are from Chen et al., JSSC 2017 [1].
"""

from __future__ import annotations

import dataclasses

from ..energy import components
from ..energy.cacti_lite import CactiLite
from ..energy.technology import NODE_45NM, NODE_65NM, ge_area_mm2
from ..formats.floatfmt import BFLOAT16, FloatFormat
from .workloads import ConvLayer

__all__ = ["EyerissDesign"]

#: Published Eyeriss core figures (65 nm, Chen et al. JSSC'17).
EYERISS_PE_ROWS = 12
EYERISS_PE_COLS = 14
EYERISS_CHIP_AREA_65NM_MM2 = 12.25
EYERISS_GLB_BYTES = 108 * 1024
#: Per-PE local scratchpad (filter 224 B + ifmap 24 B + psum 48 B ≈ 0.3 kB).
EYERISS_SPAD_BYTES = 304
#: Temporal efficiency of the row-stationary pipeline (fills, drains,
#: buffer contention); Timeloop-class results for dense 3x3 layers.
TEMPORAL_EFFICIENCY = 0.85


@dataclasses.dataclass(frozen=True)
class EyerissDesign:
    """A row-stationary accelerator with Eyeriss's published geometry."""

    pe_rows: int = EYERISS_PE_ROWS
    pe_cols: int = EYERISS_PE_COLS
    clock_hz: float = 200e6
    fmt: FloatFormat = BFLOAT16

    @property
    def total_pes(self) -> int:
        """PEs in the row-stationary array (168 as published)."""
        return self.pe_rows * self.pe_cols

    @property
    def name(self) -> str:
        """Design label, e.g. ``Eyeriss 12x14``."""
        return f"Eyeriss {self.pe_rows}x{self.pe_cols}"

    # -- performance ----------------------------------------------------

    def spatial_utilization(self, layer: ConvLayer) -> float:
        """Fraction of the PE array a row-stationary mapping keeps busy.

        RS maps one kernel row per PE row, so ``kernel`` must tile the
        ``pe_rows`` dimension; PE columns hold output-row strips and are
        limited by the layer's output height.
        """
        sets_per_col = self.pe_rows // layer.kernel
        if sets_per_col == 0:
            # Kernel taller than the array: rows are folded over multiple
            # temporal passes and the whole array stays busy.
            row_util = 1.0
        else:
            row_util = sets_per_col * layer.kernel / self.pe_rows
        col_util = min(1.0, layer.out_height / self.pe_cols)
        return row_util * col_util

    def cycles(self, layer: ConvLayer) -> int:
        """Cycle count for one layer (dense MAC accounting, as Timeloop)."""
        util = self.spatial_utilization(layer) * TEMPORAL_EFFICIENCY
        if util <= 0:
            raise ValueError(f"layer {layer.name} cannot be mapped")
        return int(round(layer.macs_dense / (self.total_pes * util)))

    def steady_cycles(self, layer: ConvLayer) -> int:
        """Sustained cycles per image: no cross-image overlap, so = cycles."""
        return self.cycles(layer)

    def macs(self, layer: ConvLayer) -> int:
        """Dense MAC accounting (padding taps included, as Timeloop)."""
        return layer.macs_dense

    def utilization(self, layer: ConvLayer) -> float:
        """Effective utilisation: spatial mapping x temporal efficiency."""
        return self.spatial_utilization(layer) * TEMPORAL_EFFICIENCY

    def passes(self, layer: ConvLayer) -> int:
        """Row-stationary tiling streams weights; no whole-array reloads."""
        return 1

    def latency_s(self, layer: ConvLayer) -> float:
        """Single-image latency for one layer."""
        return self.cycles(layer) / self.clock_hz

    def gops(self, layer: ConvLayer) -> float:
        """Sustained GOPS on a layer (2 ops per MAC)."""
        return 2.0 * layer.macs_dense / self.cycles(layer) * self.clock_hz / 1e9

    # -- area --------------------------------------------------------------

    def area_mm2(self, cacti: CactiLite | None = None) -> float:
        """45 nm gate-equivalent area of the published 65 nm chip."""
        low, _high = ge_area_mm2(EYERISS_CHIP_AREA_65NM_MM2, NODE_65NM)
        # The GE factor normalises to the ITRS reference; bring it to the
        # 45 nm frame Fig. 7 plots in by dividing the 45 nm factor out.
        return low / NODE_45NM.ge_factor_nominal

    # -- energy ------------------------------------------------------------

    def energy_per_mac_pj(self, cacti: CactiLite | None = None) -> dict[str, float]:
        """Itemised per-MAC energy of the row-stationary datapath.

        Each MAC pays the conventional multiplier, two local scratchpad
        accesses (filter + ifmap — the row-stationary point is that these
        are *small* arrays), a psum spad update, a share of global-buffer
        traffic (amortised by the ~R*S reuse the dataflow provides) and
        NoC hops.  Values are 45 nm-frame estimates from the same
        component library the DAISM model uses, so the comparison in
        Sec. V-D ("reduces energy consumption compared to Eyeriss due to
        lower per-computation energy") is apples-to-apples.
        """
        cacti = cacti or CactiLite()
        spad_word = cacti.word_read_energy_pj(2048, self.fmt.total_bits)
        glb_word = cacti.word_read_energy_pj(EYERISS_GLB_BYTES, self.fmt.total_bits)
        reuse = 9.0  # typical R*S reuse of a fetched operand
        return {
            "multiplier": components.baseline_multiplier_energy_pj(self.fmt),
            "operand_spads": 2.0 * spad_word,
            "psum_spad": 2.0 * spad_word,
            "glb_amortised": 2.0 * glb_word / reuse,
            "noc": 0.30,
            "control_clock": 0.50,
        }

    def power_mw(self, utilization: float = 1.0, cacti: CactiLite | None = None) -> float:
        """Dynamic power at a sustained utilisation."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        e_mac = sum(self.energy_per_mac_pj(cacti).values())
        return e_mac * self.total_pes * self.clock_hz * utilization * 1e-9

    def area_breakdown_mm2(self, cacti: CactiLite | None = None) -> dict[str, float]:
        """Component-level (45 nm) area model: GLB + PEs with spads."""
        cacti = cacti or CactiLite()
        glb = cacti.area_mm2(EYERISS_GLB_BYTES)
        spad = EYERISS_SPAD_BYTES * 8 * 0.30e-6 / 0.6  # loose small-array packing
        pe_logic = components.baseline_multiplier_area_mm2(self.fmt) + 0.004
        pes = self.total_pes * (pe_logic + spad)
        noc_control = 0.8
        return {"glb": glb, "pes": pes, "noc_control": noc_control}

    def __str__(self) -> str:
        return self.name
