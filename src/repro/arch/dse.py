"""Automated design-space search over DAISM configurations.

Fig. 7 is a hand-picked sweep; this module automates the selection the
paper does informally in Sec. V-D ("a trade-off exists between
performance and on-chip area, which can be fine-tuned by selecting an
appropriate number of banks and memory size"): grid-search bank count ×
bank size, evaluate each design on a workload, and answer constrained
queries such as *smallest design meeting a cycle budget* or *fastest
design under an area cap*.

Single-layer queries (:func:`enumerate_designs` and friends) keep the
paper's Fig. 7 frame; :func:`evaluate_grid` evaluates the grid on a
*whole network* through :func:`~repro.arch.network_runner.run_network`
(any :class:`~repro.arch.model.AcceleratorModel` metric set) and marks
the cycles-vs-area Pareto front — the engine behind the registered
``dse_sweep`` experiment, which fans grids out over worker processes.
"""

from __future__ import annotations

import dataclasses

from ..core.config import PC3_TR, MultiplierConfig
from ..formats.floatfmt import BFLOAT16, FloatFormat
from .daism import DaismDesign
from .workloads import ConvLayer

__all__ = [
    "EvaluatedDesign",
    "enumerate_designs",
    "best_under_area",
    "evaluate_grid",
    "smallest_meeting_cycles",
]

#: Default grid: the paper's bank counts and square-capable sizes.
DEFAULT_BANKS = (1, 2, 4, 8, 16, 32)
DEFAULT_BANK_KB = (2, 8, 32, 128, 512)


@dataclasses.dataclass(frozen=True)
class EvaluatedDesign:
    """A design point with its workload evaluation."""

    design: DaismDesign
    cycles: int
    area_mm2: float
    utilization: float

    @property
    def name(self) -> str:
        """Grid label, e.g. ``16x8kB``."""
        return f"{self.design.banks}x{self.design.bank_kb}kB"


def enumerate_designs(
    layer: ConvLayer,
    banks_grid: tuple[int, ...] = DEFAULT_BANKS,
    bank_kb_grid: tuple[int, ...] = DEFAULT_BANK_KB,
    config: MultiplierConfig = PC3_TR,
    fmt: FloatFormat = BFLOAT16,
) -> list[EvaluatedDesign]:
    """Evaluate every grid design on a layer."""
    results = []
    for banks in banks_grid:
        for bank_kb in bank_kb_grid:
            design = DaismDesign(banks=banks, bank_kb=bank_kb, config=config, fmt=fmt)
            mapping = design.map_conv(layer)
            results.append(
                EvaluatedDesign(
                    design=design,
                    cycles=mapping.cycles,
                    area_mm2=design.area_mm2(),
                    utilization=mapping.utilization,
                )
            )
    return results


def best_under_area(
    layer: ConvLayer, area_budget_mm2: float, **grid_kwargs
) -> EvaluatedDesign:
    """Fastest design whose on-chip area fits the budget."""
    candidates = [
        e for e in enumerate_designs(layer, **grid_kwargs) if e.area_mm2 <= area_budget_mm2
    ]
    if not candidates:
        raise ValueError(f"no design fits {area_budget_mm2} mm^2")
    return min(candidates, key=lambda e: (e.cycles, e.area_mm2))


def smallest_meeting_cycles(
    layer: ConvLayer, cycle_budget: int, **grid_kwargs
) -> EvaluatedDesign:
    """Smallest design meeting a latency (cycle) budget."""
    candidates = [
        e for e in enumerate_designs(layer, **grid_kwargs) if e.cycles <= cycle_budget
    ]
    if not candidates:
        raise ValueError(f"no design meets {cycle_budget} cycles")
    return min(candidates, key=lambda e: (e.area_mm2, e.cycles))


def evaluate_grid(
    layers: list[ConvLayer],
    banks_grid: tuple[int, ...] = DEFAULT_BANKS,
    bank_kb_grid: tuple[int, ...] = DEFAULT_BANK_KB,
    config: MultiplierConfig = PC3_TR,
    fmt: FloatFormat = BFLOAT16,
    batch: int = 1,
) -> list[dict[str, object]]:
    """Whole-network grid evaluation with Pareto marking (``dse_sweep``).

    Every ``banks x bank_kb`` design executes the full layer list via
    :func:`~repro.arch.network_runner.run_network`; each row carries
    batch-amortised cycles, latency, energy, area, GOPS/mW and whether
    the point is on the cycles-vs-area Pareto front.  Rows come back in
    deterministic grid order (banks-major), so sweeps cache and compare
    stably across worker counts.
    """
    from .compare import pareto_front
    from .network_runner import run_network

    reports = []
    evaluated = []
    for banks in banks_grid:
        for bank_kb in bank_kb_grid:
            design = DaismDesign(banks=banks, bank_kb=bank_kb, config=config, fmt=fmt)
            report = run_network(design, layers)
            reports.append(report)
            evaluated.append(
                EvaluatedDesign(
                    design=design,
                    cycles=report.batch_cycles(batch),
                    area_mm2=design.area_mm2(),
                    utilization=report.mean_utilization,
                )
            )
    # Value equality marks exact grid duplicates together (either both on
    # the front or both off), which is what a reader of the rows expects.
    front = pareto_front(evaluated)

    rows: list[dict[str, object]] = []
    for entry, report in zip(evaluated, reports):
        design = entry.design
        seconds = entry.cycles / batch / design.clock_hz
        gops = 2.0 * report.total_macs / seconds / 1e9
        power = design.power_mw(entry.utilization)
        rows.append(
            {
                "design": entry.name,
                "banks": design.banks,
                "bank_kb": design.bank_kb,
                "batch": batch,
                "cycles": entry.cycles,
                "ms/img": round(seconds * 1e3, 3),
                "util": round(entry.utilization, 3),
                "area [mm2]": round(entry.area_mm2, 3),
                "GOPS": round(gops, 1),
                "GOPS/mW": round(gops / power, 3) if power else 0.0,
                "pareto": entry in front,
            }
        )
    return rows
