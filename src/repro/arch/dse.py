"""Automated design-space search over DAISM configurations.

Fig. 7 is a hand-picked sweep; this module automates the selection the
paper does informally in Sec. V-D ("a trade-off exists between
performance and on-chip area, which can be fine-tuned by selecting an
appropriate number of banks and memory size"): grid-search bank count ×
bank size, evaluate each design on a workload, and answer constrained
queries such as *smallest design meeting a cycle budget* or *fastest
design under an area cap*.
"""

from __future__ import annotations

import dataclasses

from ..core.config import PC3_TR, MultiplierConfig
from ..formats.floatfmt import BFLOAT16, FloatFormat
from .daism import DaismDesign
from .workloads import ConvLayer

__all__ = ["EvaluatedDesign", "enumerate_designs", "best_under_area", "smallest_meeting_cycles"]

#: Default grid: the paper's bank counts and square-capable sizes.
DEFAULT_BANKS = (1, 2, 4, 8, 16, 32)
DEFAULT_BANK_KB = (2, 8, 32, 128, 512)


@dataclasses.dataclass(frozen=True)
class EvaluatedDesign:
    """A design point with its workload evaluation."""

    design: DaismDesign
    cycles: int
    area_mm2: float
    utilization: float

    @property
    def name(self) -> str:
        return f"{self.design.banks}x{self.design.bank_kb}kB"


def enumerate_designs(
    layer: ConvLayer,
    banks_grid: tuple[int, ...] = DEFAULT_BANKS,
    bank_kb_grid: tuple[int, ...] = DEFAULT_BANK_KB,
    config: MultiplierConfig = PC3_TR,
    fmt: FloatFormat = BFLOAT16,
) -> list[EvaluatedDesign]:
    """Evaluate every grid design on a layer."""
    results = []
    for banks in banks_grid:
        for bank_kb in bank_kb_grid:
            design = DaismDesign(banks=banks, bank_kb=bank_kb, config=config, fmt=fmt)
            mapping = design.map_conv(layer)
            results.append(
                EvaluatedDesign(
                    design=design,
                    cycles=mapping.cycles,
                    area_mm2=design.area_mm2(),
                    utilization=mapping.utilization,
                )
            )
    return results


def best_under_area(
    layer: ConvLayer, area_budget_mm2: float, **grid_kwargs
) -> EvaluatedDesign:
    """Fastest design whose on-chip area fits the budget."""
    candidates = [
        e for e in enumerate_designs(layer, **grid_kwargs) if e.area_mm2 <= area_budget_mm2
    ]
    if not candidates:
        raise ValueError(f"no design fits {area_budget_mm2} mm^2")
    return min(candidates, key=lambda e: (e.cycles, e.area_mm2))


def smallest_meeting_cycles(
    layer: ConvLayer, cycle_budget: int, **grid_kwargs
) -> EvaluatedDesign:
    """Smallest design meeting a latency (cycle) budget."""
    candidates = [
        e for e in enumerate_designs(layer, **grid_kwargs) if e.cycles <= cycle_budget
    ]
    if not candidates:
        raise ValueError(f"no design meets {cycle_budget} cycles")
    return min(candidates, key=lambda e: (e.area_mm2, e.cycles))
