"""Accelerator architecture models: DAISM, Eyeriss baseline, PIM specs."""

from .compare import (
    DesignPoint,
    default_design_sweep,
    fig7_tradeoff,
    fig8_breakdown,
    pareto_front,
    table2,
    table3_rows,
)
from .daism import AreaBreakdown, DaismDesign
from .dse import (
    EvaluatedDesign,
    best_under_area,
    enumerate_designs,
    evaluate_grid,
    smallest_meeting_cycles,
)
from .eyeriss import EyerissDesign
from .layout_mapper import MappingResult, build_rows, map_layer, tap_masks
from .model import AcceleratorModel
from .network_runner import (
    LayerReport,
    NetworkReport,
    compare_designs,
    compare_with_eyeriss,
    run_network,
)
from .scheduler import CycleSimResult, simulate_layer
from .pim_baselines import T_PIM, Z_PIM, PimBaseline, pim_baselines
from .preload import PreloadReport, preload_analysis
from .workloads import (
    ConvLayer,
    alexnet_like_layers,
    lenet_like_layers,
    mobilenet_edge_layers,
    resnet_mini_layers,
    transformer_block_layers,
    vgg8_conv1,
    vgg8_layers,
    workload_by_name,
    workload_names,
)

__all__ = [
    "DesignPoint",
    "default_design_sweep",
    "fig7_tradeoff",
    "fig8_breakdown",
    "pareto_front",
    "table2",
    "table3_rows",
    "AcceleratorModel",
    "AreaBreakdown",
    "DaismDesign",
    "EvaluatedDesign",
    "best_under_area",
    "enumerate_designs",
    "evaluate_grid",
    "smallest_meeting_cycles",
    "EyerissDesign",
    "MappingResult",
    "map_layer",
    "build_rows",
    "tap_masks",
    "LayerReport",
    "NetworkReport",
    "compare_designs",
    "compare_with_eyeriss",
    "run_network",
    "CycleSimResult",
    "simulate_layer",
    "PimBaseline",
    "PreloadReport",
    "preload_analysis",
    "T_PIM",
    "Z_PIM",
    "pim_baselines",
    "ConvLayer",
    "alexnet_like_layers",
    "lenet_like_layers",
    "mobilenet_edge_layers",
    "resnet_mini_layers",
    "transformer_block_layers",
    "vgg8_conv1",
    "vgg8_layers",
    "workload_by_name",
    "workload_names",
]
