"""Workload descriptions: convolution layers and layer tables.

The paper's architecture study (Sec. V-C) uses the first layer of VGG-8
on 224x224x3 inputs — "150,528 inputs for 1728 kernel elements".  This
module defines the :class:`ConvLayer` shape record plus the layer tables
used across the benchmarks (VGG-8, a reduced ResNet, AlexNet-style and
LeNet-style networks for the sweeps).
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "ConvLayer",
    "vgg8_layers",
    "vgg8_conv1",
    "alexnet_like_layers",
    "lenet_like_layers",
    "resnet_mini_layers",
]


@dataclasses.dataclass(frozen=True)
class ConvLayer:
    """Shape of one convolution layer (stride-s, zero padding p).

    ``height``/``width`` are the *input* spatial dimensions.
    """

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    height: int
    width: int
    stride: int = 1
    padding: int = 1

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.kernel, self.height, self.width) < 1:
            raise ValueError(f"{self.name}: all dimensions must be positive")
        if self.stride < 1 or self.padding < 0:
            raise ValueError(f"{self.name}: bad stride/padding")
        if self.out_height < 1 or self.out_width < 1:
            raise ValueError(f"{self.name}: empty output")

    # -- derived shapes ---------------------------------------------------

    @property
    def out_height(self) -> int:
        return (self.height + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.width + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def input_elements(self) -> int:
        """Input tensor size — the paper's "inputs" count (150,528 for VGG-8 L1)."""
        return self.in_channels * self.height * self.width

    @property
    def kernel_elements(self) -> int:
        """Unique kernel weights — the paper's count (1,728 for VGG-8 L1)."""
        return self.in_channels * self.kernel * self.kernel * self.out_channels

    @property
    def output_elements(self) -> int:
        return self.out_channels * self.out_height * self.out_width

    def valid_positions(self, tap_row: int, tap_col: int) -> int:
        """Input pixels that participate with kernel tap ``(tap_row, tap_col)``.

        For stride ``s`` and padding ``p``, input pixel ``(h, w)``
        participates with tap ``(kh, kw)`` iff ``h = oh*s + kh - p`` for
        some output row ``oh`` (same for columns).
        """
        return self._valid_axis(tap_row, self.height, self.out_height) * self._valid_axis(
            tap_col, self.width, self.out_width
        )

    def _valid_axis(self, tap: int, size: int, out_size: int) -> int:
        count = 0
        for o in range(out_size):
            pos = o * self.stride + tap - self.padding
            if 0 <= pos < size:
                count += 1
        return count

    @property
    def macs(self) -> int:
        """Exact multiply-accumulate count (padding taps excluded).

        Products against zero padding are bypassed by the DAISM datapath
        (multiplications by zero are skipped), so they are not work.
        """
        taps = sum(
            self.valid_positions(kh, kw)
            for kh in range(self.kernel)
            for kw in range(self.kernel)
        )
        return taps * self.in_channels * self.out_channels

    @property
    def macs_dense(self) -> int:
        """MAC count including padding taps (conventional accounting)."""
        return (
            self.out_height
            * self.out_width
            * self.kernel
            * self.kernel
            * self.in_channels
            * self.out_channels
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.in_channels}x{self.height}x{self.width} -> "
            f"{self.out_channels}x{self.out_height}x{self.out_width} (k={self.kernel})"
        )


def vgg8_conv1() -> ConvLayer:
    """The paper's evaluation layer: VGG-8 conv1 on ImageNet-size input."""
    return ConvLayer("vgg8_conv1", in_channels=3, out_channels=64, kernel=3, height=224, width=224)


def vgg8_layers() -> list[ConvLayer]:
    """An 8-weight-layer VGG-style network on 224x224x3 input.

    Five conv layers (each followed by 2x2 pooling in the network) plus
    the three FC layers expressed as 1x1 convolutions over the pooled map.
    """
    return [
        ConvLayer("conv1", 3, 64, 3, 224, 224),
        ConvLayer("conv2", 64, 128, 3, 112, 112),
        ConvLayer("conv3", 128, 256, 3, 56, 56),
        ConvLayer("conv4", 256, 256, 3, 28, 28),
        ConvLayer("conv5", 256, 512, 3, 14, 14),
        ConvLayer("fc1", 512, 512, 7, 7, 7, padding=0),
        ConvLayer("fc2", 512, 512, 1, 1, 1, padding=0),
        ConvLayer("fc3", 512, 1000, 1, 1, 1, padding=0),
    ]


def alexnet_like_layers() -> list[ConvLayer]:
    """AlexNet-style conv stack (large strided first layer)."""
    return [
        ConvLayer("conv1", 3, 96, 11, 227, 227, stride=4, padding=0),
        ConvLayer("conv2", 96, 256, 5, 27, 27, padding=2),
        ConvLayer("conv3", 256, 384, 3, 13, 13),
        ConvLayer("conv4", 384, 384, 3, 13, 13),
        ConvLayer("conv5", 384, 256, 3, 13, 13),
    ]


def lenet_like_layers() -> list[ConvLayer]:
    """Small edge-class CNN (the paper notes edge devices as a key target)."""
    return [
        ConvLayer("conv1", 1, 6, 5, 28, 28, padding=2),
        ConvLayer("conv2", 6, 16, 5, 14, 14, padding=0),
    ]


def resnet_mini_layers() -> list[ConvLayer]:
    """Reduced ResNet-style stack (32x32 input, residual trunk shapes)."""
    return [
        ConvLayer("conv1", 3, 16, 3, 32, 32),
        ConvLayer("block1a", 16, 16, 3, 32, 32),
        ConvLayer("block1b", 16, 16, 3, 32, 32),
        ConvLayer("block2a", 16, 32, 3, 32, 32, stride=2),
        ConvLayer("block2b", 32, 32, 3, 16, 16),
        ConvLayer("block3a", 32, 64, 3, 16, 16, stride=2),
        ConvLayer("block3b", 64, 64, 3, 8, 8),
    ]
