"""Workload descriptions: convolution layers and layer tables.

The paper's architecture study (Sec. V-C) uses the first layer of VGG-8
on 224x224x3 inputs — "150,528 inputs for 1728 kernel elements".  This
module defines the :class:`ConvLayer` shape record plus the layer tables
used across the benchmarks and the DSE: VGG-8, a reduced ResNet,
AlexNet-style and LeNet-style networks, a MobileNet-style depthwise-
separable edge stack (``groups`` support), and a transformer encoder
block expressed as 1x1 convolutions over the token axis — so the design
sweeps cover edge-to-datacenter regimes, not just the paper's single
layer.  :func:`workload_by_name` is the string registry the experiment
engine sweeps over (experiment parameters must be JSON scalars).
"""

from __future__ import annotations

import dataclasses

__all__ = [
    "ConvLayer",
    "vgg8_layers",
    "vgg8_conv1",
    "alexnet_like_layers",
    "lenet_like_layers",
    "mobilenet_edge_layers",
    "resnet_mini_layers",
    "transformer_block_layers",
    "mobilenet_edge_nn_layers",
    "transformer_encoder_nn_layers",
    "workload_by_name",
    "workload_names",
]


@dataclasses.dataclass(frozen=True)
class ConvLayer:
    """Shape of one convolution layer (stride-s, zero padding p).

    ``height``/``width`` are the *input* spatial dimensions.  ``groups``
    splits channels as in grouped/depthwise convolution: input channel
    ``c`` only meets the ``out_channels // groups`` filters of its group
    (``groups == in_channels == out_channels`` is plain depthwise).
    """

    name: str
    in_channels: int
    out_channels: int
    kernel: int
    height: int
    width: int
    stride: int = 1
    padding: int = 1
    groups: int = 1

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.kernel, self.height, self.width) < 1:
            raise ValueError(f"{self.name}: all dimensions must be positive")
        if self.stride < 1 or self.padding < 0:
            raise ValueError(f"{self.name}: bad stride/padding")
        if self.groups < 1 or self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(f"{self.name}: groups must divide in/out channels")
        if self.out_height < 1 or self.out_width < 1:
            raise ValueError(f"{self.name}: empty output")

    # -- derived shapes ---------------------------------------------------

    @property
    def out_height(self) -> int:
        """Output feature-map height."""
        return (self.height + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        """Output feature-map width."""
        return (self.width + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def input_elements(self) -> int:
        """Input tensor size — the paper's "inputs" count (150,528 for VGG-8 L1)."""
        return self.in_channels * self.height * self.width

    @property
    def filters_per_slice(self) -> int:
        """Filters one input channel feeds (``out_channels`` ungrouped)."""
        return self.out_channels // self.groups

    @property
    def kernel_elements(self) -> int:
        """Unique kernel weights — the paper's count (1,728 for VGG-8 L1)."""
        return self.in_channels * self.kernel * self.kernel * self.filters_per_slice

    @property
    def output_elements(self) -> int:
        """Output tensor size."""
        return self.out_channels * self.out_height * self.out_width

    def valid_positions(self, tap_row: int, tap_col: int) -> int:
        """Input pixels that participate with kernel tap ``(tap_row, tap_col)``.

        For stride ``s`` and padding ``p``, input pixel ``(h, w)``
        participates with tap ``(kh, kw)`` iff ``h = oh*s + kh - p`` for
        some output row ``oh`` (same for columns).
        """
        return self._valid_axis(tap_row, self.height, self.out_height) * self._valid_axis(
            tap_col, self.width, self.out_width
        )

    def _valid_axis(self, tap: int, size: int, out_size: int) -> int:
        count = 0
        for o in range(out_size):
            pos = o * self.stride + tap - self.padding
            if 0 <= pos < size:
                count += 1
        return count

    @property
    def macs(self) -> int:
        """Exact multiply-accumulate count (padding taps excluded).

        Products against zero padding are bypassed by the DAISM datapath
        (multiplications by zero are skipped), so they are not work.
        """
        taps = sum(
            self.valid_positions(kh, kw)
            for kh in range(self.kernel)
            for kw in range(self.kernel)
        )
        return taps * self.in_channels * self.filters_per_slice

    @property
    def macs_dense(self) -> int:
        """MAC count including padding taps (conventional accounting)."""
        return (
            self.out_height
            * self.out_width
            * self.kernel
            * self.kernel
            * self.in_channels
            * self.filters_per_slice
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.in_channels}x{self.height}x{self.width} -> "
            f"{self.out_channels}x{self.out_height}x{self.out_width} (k={self.kernel})"
        )


def vgg8_conv1() -> ConvLayer:
    """The paper's evaluation layer: VGG-8 conv1 on ImageNet-size input."""
    return ConvLayer("vgg8_conv1", in_channels=3, out_channels=64, kernel=3, height=224, width=224)


def vgg8_layers() -> list[ConvLayer]:
    """An 8-weight-layer VGG-style network on 224x224x3 input.

    Five conv layers (each followed by 2x2 pooling in the network) plus
    the three FC layers expressed as 1x1 convolutions over the pooled map.
    """
    return [
        ConvLayer("conv1", 3, 64, 3, 224, 224),
        ConvLayer("conv2", 64, 128, 3, 112, 112),
        ConvLayer("conv3", 128, 256, 3, 56, 56),
        ConvLayer("conv4", 256, 256, 3, 28, 28),
        ConvLayer("conv5", 256, 512, 3, 14, 14),
        ConvLayer("fc1", 512, 512, 7, 7, 7, padding=0),
        ConvLayer("fc2", 512, 512, 1, 1, 1, padding=0),
        ConvLayer("fc3", 512, 1000, 1, 1, 1, padding=0),
    ]


def alexnet_like_layers() -> list[ConvLayer]:
    """AlexNet-style conv stack (large strided first layer)."""
    return [
        ConvLayer("conv1", 3, 96, 11, 227, 227, stride=4, padding=0),
        ConvLayer("conv2", 96, 256, 5, 27, 27, padding=2),
        ConvLayer("conv3", 256, 384, 3, 13, 13),
        ConvLayer("conv4", 384, 384, 3, 13, 13),
        ConvLayer("conv5", 384, 256, 3, 13, 13),
    ]


def lenet_like_layers() -> list[ConvLayer]:
    """Small edge-class CNN (the paper notes edge devices as a key target)."""
    return [
        ConvLayer("conv1", 1, 6, 5, 28, 28, padding=2),
        ConvLayer("conv2", 6, 16, 5, 14, 14, padding=0),
    ]


def resnet_mini_layers() -> list[ConvLayer]:
    """Reduced ResNet-style stack (32x32 input, residual trunk shapes)."""
    return [
        ConvLayer("conv1", 3, 16, 3, 32, 32),
        ConvLayer("block1a", 16, 16, 3, 32, 32),
        ConvLayer("block1b", 16, 16, 3, 32, 32),
        ConvLayer("block2a", 16, 32, 3, 32, 32, stride=2),
        ConvLayer("block2b", 32, 32, 3, 16, 16),
        ConvLayer("block3a", 32, 64, 3, 16, 16, stride=2),
        ConvLayer("block3b", 64, 64, 3, 8, 8),
    ]


def mobilenet_edge_layers() -> list[ConvLayer]:
    """MobileNet-style depthwise-separable stack (96x96 edge input).

    The canonical edge-inference workload: a strided full conv stem, then
    depthwise 3x3 (``groups == channels``) + pointwise 1x1 pairs.
    Depthwise layers have only ``C·k·k`` kernel elements, so they stress
    the mapper's small-slice packing and the multi-bank balance in the
    opposite way VGG's wide slices do.
    """
    return [
        ConvLayer("stem", 3, 32, 3, 96, 96, stride=2),
        ConvLayer("dw1", 32, 32, 3, 48, 48, groups=32),
        ConvLayer("pw1", 32, 64, 1, 48, 48, padding=0),
        ConvLayer("dw2", 64, 64, 3, 48, 48, stride=2, groups=64),
        ConvLayer("pw2", 64, 128, 1, 24, 24, padding=0),
        ConvLayer("dw3", 128, 128, 3, 24, 24, groups=128),
        ConvLayer("pw3", 128, 128, 1, 24, 24, padding=0),
    ]


def transformer_block_layers(d_model: int = 256, seq_len: int = 64) -> list[ConvLayer]:
    """One transformer encoder block's weight GEMMs as 1x1 convolutions.

    A GEMM ``(seq, d) @ (d, f)`` is exactly a 1x1 conv over a
    ``seq_len x 1`` map with ``d`` input and ``f`` output channels — the
    datacenter-class workload shape (wide slices, zero spatial reuse).
    The QKV/output projections and the 4x MLP are the *weight*
    multiplications DAISM can serve from pre-loaded SRAM; the
    activation-activation attention products (``QK^T``, ``AV``) have no
    static operand to pre-load and are deliberately absent.
    """
    return [
        ConvLayer("qkv_proj", d_model, 3 * d_model, 1, seq_len, 1, padding=0),
        ConvLayer("attn_out", d_model, d_model, 1, seq_len, 1, padding=0),
        ConvLayer("mlp_up", d_model, 4 * d_model, 1, seq_len, 1, padding=0),
        ConvLayer("mlp_down", 4 * d_model, d_model, 1, seq_len, 1, padding=0),
    ]


def mobilenet_edge_nn_layers() -> list[ConvLayer]:
    """MobileNet-edge shapes derived from the *executable* ``nn`` model.

    Traces :func:`repro.nn.models.build_mobilenet_edge` through
    :func:`repro.runtime.plan.conv_workload` — the sync test pins this
    equal to the hand-registered :func:`mobilenet_edge_layers`, so the
    co-sim sweeps and the running software share one shape source.
    """
    from ..nn.models import build_mobilenet_edge  # deferred: nn imports arch-free
    from ..runtime.plan import conv_workload  # deferred: runtime imports arch

    return conv_workload(build_mobilenet_edge(), (3, 96, 96), include_fc=False)


def transformer_encoder_nn_layers() -> list[ConvLayer]:
    """Transformer-block shapes derived from the *executable* ``nn`` model.

    Traces :func:`repro.nn.models.build_transformer_encoder` (attention
    contributes its QKV/output projections; the MLP its two FCs) and is
    pinned equal to :func:`transformer_block_layers` by the sync test.
    """
    from ..nn.models import build_transformer_encoder
    from ..runtime.plan import conv_workload

    return conv_workload(build_transformer_encoder(), (256, 64, 1), include_fc=True)


#: Name -> layer-list factory; the string space the experiment engine
#: sweeps (sweep-point parameters must stay JSON-serialisable).
_WORKLOADS = {
    "vgg8": vgg8_layers,
    "vgg8_conv1": lambda: [vgg8_conv1()],
    "alexnet": alexnet_like_layers,
    "lenet": lenet_like_layers,
    "resnet_mini": resnet_mini_layers,
    "mobilenet_edge": mobilenet_edge_layers,
    "transformer_block": transformer_block_layers,
    "mobilenet_edge_nn": mobilenet_edge_nn_layers,
    "transformer_encoder_nn": transformer_encoder_nn_layers,
}


def workload_names() -> list[str]:
    """Sorted names accepted by :func:`workload_by_name`."""
    return sorted(_WORKLOADS)


def workload_by_name(name: str) -> list[ConvLayer]:
    """Layer list of a named workload (the DSE/experiment registry)."""
    try:
        factory = _WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {', '.join(workload_names())}"
        ) from None
    return factory()
