"""Published in-SRAM PIM baselines: Z-PIM and T-PIM (Table II).

The paper compares DAISM against two fabricated digital in-SRAM PIM
chips, quoting their published measurements (as we do here — these
numbers are *specs from the papers*, not simulation outputs):

* **Z-PIM** (Kim et al., JSSC 2021 [10]): 65 nm, bit-serial,
  sparsity-dependent throughput/efficiency.
* **T-PIM** (Heo et al., JSSC 2023 [11]): 28 nm, bit-serial, on-device
  training, sparsity-dependent figures.

Both are bit-serial — the very overhead DAISM's bit-parallel read avoids;
Table II's point is that DAISM reaches 1-2 orders of magnitude higher
GOPS and GOPS/mm^2 at comparable GOPS/mW despite the older node.
"""

from __future__ import annotations

import dataclasses

from ..energy.technology import TechNode, ge_area_mm2, node_by_nm

__all__ = ["PimBaseline", "Z_PIM", "T_PIM", "pim_baselines"]


@dataclasses.dataclass(frozen=True)
class PimBaseline:
    """Published figures of one PIM chip (ranges where sparsity-dependent)."""

    name: str
    computation: str
    node: TechNode
    area_mm2: float
    clock_mhz: tuple[float, float]
    supply_v: tuple[float, float]
    gops: tuple[float, float]
    gops_per_mw: tuple[float, float]
    gops_per_mm2: tuple[float, float]
    notes: str

    @property
    def ge_area_range_mm2(self) -> tuple[float, float]:
        """ITRS gate-equivalent area (the Table II § row)."""
        return ge_area_mm2(self.area_mm2, self.node)

    def row(self) -> dict[str, object]:
        """A Table II style row."""
        return {
            "Architecture": self.name,
            "Computations": self.computation,
            "Node [nm]": self.node.feature_nm,
            "Area [mm2]": self.area_mm2,
            "GE Area [mm2]": self.ge_area_range_mm2,
            "Clock [MHz]": self.clock_mhz,
            "Supply [V]": self.supply_v,
            "GOPS": self.gops,
            "GOPS/mW": self.gops_per_mw,
            "GOPS/mm2": self.gops_per_mm2,
        }


Z_PIM = PimBaseline(
    name="Z-PIM",
    computation="bit-serial",
    node=node_by_nm(65),
    area_mm2=7.57,
    clock_mhz=(200.0, 200.0),
    supply_v=(1.0, 1.0),
    gops=(1.52, 16.0),
    gops_per_mw=(0.31, 3.07),
    gops_per_mm2=(0.53, 5.31),
    notes="throughput/efficiency vary with weight sparsity 0.1-0.9",
)

T_PIM = PimBaseline(
    name="T-PIM",
    computation="bit-serial",
    node=node_by_nm(28),
    area_mm2=5.04,
    clock_mhz=(50.0, 280.0),
    supply_v=(0.75, 1.05),
    gops=(5.56, 5.56),
    gops_per_mw=(0.13, 1.26),
    gops_per_mm2=(1.1, 1.1),
    notes="GOPS measured at input sparsity 0.9, weight sparsity 0.5",
)


def pim_baselines() -> tuple[PimBaseline, ...]:
    """The two Table II comparison chips."""
    return (Z_PIM, T_PIM)
