"""The accelerator-model protocol shared by every design in this package.

:class:`~repro.arch.daism.DaismDesign` and
:class:`~repro.arch.eyeriss.EyerissDesign` grew up as unrelated classes
with overlapping-but-different method sets, so every consumer
(:mod:`~repro.arch.network_runner`, :mod:`~repro.arch.compare`,
:mod:`~repro.arch.dse`) special-cased one or the other.
:class:`AcceleratorModel` is the one structural contract they all code
against now: per-layer performance (``cycles`` / ``steady_cycles`` /
``utilization`` / ``passes``), the model's own MAC accounting (``macs``
— DAISM skips padding taps, Eyeriss counts dense, and energy must follow
each model's own convention), and chip-level area/energy.  Any new
baseline that implements the protocol plugs into the network runner, the
comparison tables and the design-space exploration without touching
them.

The published PIM chips (:mod:`~repro.arch.pim_baselines`) deliberately
do **not** implement the protocol — they are quoted spec sheets, not
models that can be evaluated on an arbitrary layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..energy.cacti_lite import CactiLite
    from .workloads import ConvLayer

__all__ = ["AcceleratorModel"]


@runtime_checkable
class AcceleratorModel(Protocol):
    """Structural interface of an accelerator that can execute a layer.

    ``@runtime_checkable`` only verifies attribute presence on
    ``isinstance`` checks; the behavioural contract (cycle/energy
    semantics below) is pinned by ``tests/arch/test_model.py`` for every
    implementation shipped here.
    """

    clock_hz: float

    @property
    def name(self) -> str:
        """Human-readable design identifier (stable across runs)."""
        ...

    @property
    def total_pes(self) -> int:
        """Processing elements available per cycle."""
        ...

    def cycles(self, layer: "ConvLayer") -> int:
        """Single-image cycles for one layer (first-image latency)."""
        ...

    def steady_cycles(self, layer: "ConvLayer") -> int:
        """Sustained cycles per image at large batch (throughput frame).

        Equals :meth:`cycles` for architectures without cross-image
        overlap; banked DAISM designs amortise bank imbalance across the
        batch, so this can be lower.
        """
        ...

    def macs(self, layer: "ConvLayer") -> int:
        """Multiply-accumulates the model charges for one layer.

        Each model keeps its own accounting (DAISM bypasses zero-padding
        taps, Eyeriss counts dense) so energy = ``macs * energy_per_mac``
        stays self-consistent.
        """
        ...

    def utilization(self, layer: "ConvLayer") -> float:
        """Fraction of PE-cycles doing useful MACs on this layer."""
        ...

    def passes(self, layer: "ConvLayer") -> int:
        """Weight-reload passes needed when the layer exceeds on-chip storage."""
        ...

    def area_mm2(self, cacti: "CactiLite | None" = None) -> float:
        """Total on-chip area [mm^2]."""
        ...

    def energy_per_mac_pj(self, cacti: "CactiLite | None" = None) -> dict[str, float]:
        """Itemised per-MAC energy [pJ] (sum for the total)."""
        ...

    def power_mw(self, utilization: float = 1.0, cacti: "CactiLite | None" = None) -> float:
        """Dynamic power at a sustained utilisation [mW]."""
        ...
