"""End-to-end network execution on a DAISM design.

Maps every layer of a network (a list of :class:`ConvLayer`) onto one
:class:`~repro.arch.daism.DaismDesign` and aggregates cycles, time,
energy and utilisation — the whole-network view behind the paper's
single-layer Fig. 7 study.  Weight sets larger than the compute SRAM are
handled by the mapper's multi-pass mechanism; the report carries the
pass count per layer so reload pressure is visible.
"""

from __future__ import annotations

import dataclasses

from .daism import DaismDesign
from .eyeriss import EyerissDesign
from .workloads import ConvLayer

__all__ = ["LayerReport", "NetworkReport", "run_network", "compare_with_eyeriss"]


@dataclasses.dataclass(frozen=True)
class LayerReport:
    """Per-layer execution summary."""

    name: str
    cycles: int
    macs: int
    utilization: float
    passes: int
    energy_uj: float


@dataclasses.dataclass(frozen=True)
class NetworkReport:
    """Whole-network execution summary on one design."""

    design_name: str
    layers: tuple[LayerReport, ...]

    @property
    def total_cycles(self) -> int:
        return sum(l.cycles for l in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def total_energy_uj(self) -> float:
        return sum(l.energy_uj for l in self.layers)

    @property
    def mean_utilization(self) -> float:
        """MAC-weighted utilisation across layers."""
        total = self.total_macs
        if not total:
            return 0.0
        return sum(l.utilization * l.macs for l in self.layers) / total

    def latency_s(self, clock_hz: float) -> float:
        return self.total_cycles / clock_hz

    def rows(self) -> list[dict[str, object]]:
        """Printable per-layer rows plus a totals row."""
        out: list[dict[str, object]] = [
            {
                "layer": l.name,
                "cycles": l.cycles,
                "MACs": l.macs,
                "util": f"{l.utilization:.3f}",
                "passes": l.passes,
                "energy [uJ]": f"{l.energy_uj:.1f}",
            }
            for l in self.layers
        ]
        out.append(
            {
                "layer": "TOTAL",
                "cycles": self.total_cycles,
                "MACs": self.total_macs,
                "util": f"{self.mean_utilization:.3f}",
                "passes": "",
                "energy [uJ]": f"{self.total_energy_uj:.1f}",
            }
        )
        return out


def run_network(design: DaismDesign, layers: list[ConvLayer]) -> NetworkReport:
    """Execute a layer list on a design and aggregate the results."""
    if not layers:
        raise ValueError("network has no layers")
    e_mac_pj = sum(design.energy_per_mac_pj().values())
    reports = []
    for layer in layers:
        mapping = design.map_conv(layer)
        reports.append(
            LayerReport(
                name=layer.name,
                cycles=mapping.cycles,
                macs=mapping.macs,
                utilization=mapping.utilization,
                passes=mapping.passes,
                energy_uj=mapping.macs * e_mac_pj * 1e-6,
            )
        )
    return NetworkReport(design_name=design.name, layers=tuple(reports))


def compare_with_eyeriss(
    design: DaismDesign, layers: list[ConvLayer], eyeriss: EyerissDesign | None = None
) -> dict[str, float]:
    """Whole-network cycle/area comparison against the Eyeriss baseline."""
    eyeriss = eyeriss or EyerissDesign()
    daism_cycles = run_network(design, layers).total_cycles
    eyeriss_cycles = sum(eyeriss.cycles(layer) for layer in layers)
    return {
        "daism_cycles": float(daism_cycles),
        "eyeriss_cycles": float(eyeriss_cycles),
        "cycle_ratio": eyeriss_cycles / daism_cycles,
        "daism_area_mm2": design.area_mm2(),
        "eyeriss_area_mm2": eyeriss.area_mm2(),
        "area_ratio": eyeriss.area_mm2() / design.area_mm2(),
    }
