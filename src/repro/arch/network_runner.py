"""End-to-end network execution on any accelerator model.

Maps every layer of a network (a list of :class:`ConvLayer`) onto one
:class:`~repro.arch.model.AcceleratorModel` and aggregates cycles, time,
energy and utilisation — the whole-network view behind the paper's
single-layer Fig. 7 study.  Weight sets larger than on-chip storage are
handled by the model's multi-pass mechanism; the report carries the pass
count per layer so reload pressure is visible.

:func:`run_network` accepts a DAISM design, the Eyeriss baseline or any
other protocol implementation; :func:`compare_designs` runs several
models over the same network and emits one summary row each (the
``network_latency`` experiment's engine).  Batch amortisation uses the
model's ``steady_cycles``: the first image pays the busiest-bank
latency, every further image the balanced sustained rate.
"""

from __future__ import annotations

import dataclasses

from .eyeriss import EyerissDesign
from .model import AcceleratorModel
from .workloads import ConvLayer

__all__ = [
    "LayerReport",
    "NetworkReport",
    "run_network",
    "run_module",
    "compare_designs",
    "compare_with_eyeriss",
]


@dataclasses.dataclass(frozen=True)
class LayerReport:
    """Per-layer execution summary."""

    name: str
    cycles: int
    steady_cycles: int
    macs: int
    utilization: float
    passes: int
    energy_uj: float


@dataclasses.dataclass(frozen=True)
class NetworkReport:
    """Whole-network execution summary on one design."""

    design_name: str
    layers: tuple[LayerReport, ...]

    @property
    def total_cycles(self) -> int:
        """Single-image cycles summed over layers."""
        return sum(l.cycles for l in self.layers)

    @property
    def total_steady_cycles(self) -> int:
        """Sustained cycles per image once the pipeline is batch-filled."""
        return sum(l.steady_cycles for l in self.layers)

    @property
    def total_macs(self) -> int:
        """MACs summed over layers (the model's own accounting)."""
        return sum(l.macs for l in self.layers)

    @property
    def total_energy_uj(self) -> float:
        """Compute energy for one image [uJ]."""
        return sum(l.energy_uj for l in self.layers)

    @property
    def mean_utilization(self) -> float:
        """MAC-weighted utilisation across layers."""
        total = self.total_macs
        if not total:
            return 0.0
        return sum(l.utilization * l.macs for l in self.layers) / total

    def latency_s(self, clock_hz: float) -> float:
        """Single-image latency at a clock [s]."""
        return self.total_cycles / clock_hz

    def batch_cycles(self, batch: int) -> int:
        """Cycles for a batch: first image at latency, rest at steady rate.

        The paper's amortisation lever ("when batch size is large during
        inference, it amortizes...", Sec. V-D): bank imbalance is paid
        once, further images stream at the balanced sustained rate.
        """
        if batch < 1:
            raise ValueError("batch must be positive")
        return self.total_cycles + (batch - 1) * self.total_steady_cycles

    def rows(self) -> list[dict[str, object]]:
        """Printable per-layer rows plus a totals row."""
        out: list[dict[str, object]] = [
            {
                "layer": l.name,
                "cycles": l.cycles,
                "MACs": l.macs,
                "util": f"{l.utilization:.3f}",
                "passes": l.passes,
                "energy [uJ]": f"{l.energy_uj:.1f}",
            }
            for l in self.layers
        ]
        out.append(
            {
                "layer": "TOTAL",
                "cycles": self.total_cycles,
                "MACs": self.total_macs,
                "util": f"{self.mean_utilization:.3f}",
                "passes": "",
                "energy [uJ]": f"{self.total_energy_uj:.1f}",
            }
        )
        return out


def run_network(model: AcceleratorModel, layers: list[ConvLayer]) -> NetworkReport:
    """Execute a layer list on any accelerator model and aggregate."""
    if not layers:
        raise ValueError("network has no layers")
    e_mac_pj = sum(model.energy_per_mac_pj().values())
    reports = []
    for layer in layers:
        macs = model.macs(layer)
        reports.append(
            LayerReport(
                name=layer.name,
                cycles=model.cycles(layer),
                steady_cycles=model.steady_cycles(layer),
                macs=macs,
                utilization=model.utilization(layer),
                passes=model.passes(layer),
                energy_uj=macs * e_mac_pj * 1e-6,
            )
        )
    return NetworkReport(design_name=model.name, layers=tuple(reports))


def run_module(
    model: AcceleratorModel,
    module,
    input_shape: tuple[int, int, int],
    include_fc: bool = True,
) -> NetworkReport:
    """Execute a software :class:`~repro.nn.layers.Module` on a design.

    Derives the layer shapes from the *same* ``to_plan_op()`` trace the
    compiled inference runtime executes
    (:func:`repro.runtime.plan.conv_workload`), so the co-simulation and
    the software runtime cannot drift apart: one description feeds both.
    ``input_shape`` is ``(channels, height, width)`` of one sample;
    ``include_fc`` maps fully connected layers as ``1x1`` convolutions
    (drop it to model conv stacks only).
    """
    from ..runtime.plan import conv_workload  # deferred: runtime imports arch

    return run_network(model, conv_workload(module, input_shape, include_fc=include_fc))


def compare_designs(
    models: list[AcceleratorModel], layers: list[ConvLayer], batch: int = 1
) -> list[dict[str, object]]:
    """One summary row per model over the same network.

    Rows carry the absolute figures (cycles, ms, uJ, mm^2) plus ratios
    against the first model in the list (the reference design), which is
    how the ``network_latency`` experiment reports DAISM vs baselines.
    """
    if not models:
        raise ValueError("compare_designs needs at least one model")
    rows: list[dict[str, object]] = []
    ref_cycles: int | None = None
    for model in models:
        report = run_network(model, layers)
        cycles = report.batch_cycles(batch)
        if ref_cycles is None:
            ref_cycles = cycles
        rows.append(
            {
                "design": model.name,
                "batch": batch,
                "cycles": cycles,
                "ms/img": round(cycles / batch / model.clock_hz * 1e3, 3),
                "util": round(report.mean_utilization, 3),
                "energy/img [uJ]": round(report.total_energy_uj, 1),
                "area [mm2]": round(model.area_mm2(), 2),
                "vs ref cycles": round(cycles / ref_cycles, 3),
            }
        )
    return rows


def compare_with_eyeriss(
    model: AcceleratorModel, layers: list[ConvLayer], eyeriss: EyerissDesign | None = None
) -> dict[str, float]:
    """Whole-network cycle/area comparison against the Eyeriss baseline."""
    eyeriss = eyeriss or EyerissDesign()
    daism_cycles = run_network(model, layers).total_cycles
    eyeriss_cycles = sum(eyeriss.cycles(layer) for layer in layers)
    return {
        "daism_cycles": float(daism_cycles),
        "eyeriss_cycles": float(eyeriss_cycles),
        "cycle_ratio": eyeriss_cycles / daism_cycles,
        "daism_area_mm2": model.area_mm2(),
        "eyeriss_area_mm2": eyeriss.area_mm2(),
        "area_ratio": eyeriss.area_mm2() / model.area_mm2(),
    }
