"""Design-space exploration and table generators (Fig. 7/8, Tables II/III).

Functions here assemble the paper's architecture-level results from the
models in this package:

* :func:`fig7_tradeoff` — cycles-vs-area series for DAISM bank sweeps
  against the Eyeriss baseline on VGG-8 conv1;
* :func:`fig8_breakdown` — area breakdown sweeps (bank width, bank count);
* :func:`table2` — the PIM comparison table (DAISM model outputs next to
  the published Z-PIM/T-PIM specs);
* :func:`table3` — the qualitative feature summary.
"""

from __future__ import annotations

import dataclasses

from ..core.config import PC3_TR, MultiplierConfig
from ..energy.cacti_lite import CactiLite
from ..formats.floatfmt import BFLOAT16, FloatFormat
from .daism import DaismDesign
from .eyeriss import EyerissDesign
from .pim_baselines import pim_baselines
from .workloads import ConvLayer, vgg8_conv1

__all__ = [
    "DesignPoint",
    "default_design_sweep",
    "fig7_tradeoff",
    "fig8_breakdown",
    "pareto_front",
    "table2",
    "table3_rows",
]


@dataclasses.dataclass(frozen=True)
class DesignPoint:
    """One point of the Fig. 7 scatter."""

    name: str
    cycles: int
    area_mm2: float
    total_pes: int
    utilization: float


def default_design_sweep(
    config: MultiplierConfig = PC3_TR, fmt: FloatFormat = BFLOAT16
) -> list[DaismDesign]:
    """The bank/size variations the paper sweeps in Fig. 7.

    "evaluated by using one single 512kB or 8kB SRAM memory, then by
    splitting it into smaller square banks" — plus the 16x8 kB point the
    paper singles out as the smallest iso-performance design.
    """
    sweep = [
        (1, 512),
        (4, 128),
        (16, 32),
        (1, 128),
        (4, 32),
        (16, 8),
        (1, 8),
        (4, 8),
    ]
    return [DaismDesign(banks=b, bank_kb=kb, config=config, fmt=fmt) for b, kb in sweep]


def fig7_tradeoff(
    layer: ConvLayer | None = None,
    designs: list[DaismDesign] | None = None,
    cacti: CactiLite | None = None,
) -> list[DesignPoint]:
    """Cycles vs on-chip area for DAISM variants and Eyeriss (Fig. 7)."""
    layer = layer or vgg8_conv1()
    designs = designs if designs is not None else default_design_sweep()
    cacti = cacti or CactiLite()

    points = []
    for design in designs:
        mapping = design.map_conv(layer)
        points.append(
            DesignPoint(
                name=f"{design.banks}x{design.bank_kb}kB",
                cycles=mapping.cycles,
                area_mm2=design.area_mm2(cacti),
                total_pes=design.total_pes,
                utilization=mapping.utilization,
            )
        )
    eyeriss = EyerissDesign()
    points.append(
        DesignPoint(
            name=eyeriss.name,
            cycles=eyeriss.cycles(layer),
            area_mm2=eyeriss.area_mm2(cacti),
            total_pes=eyeriss.total_pes,
            utilization=eyeriss.spatial_utilization(layer),
        )
    )
    return points


def fig8_breakdown(
    bank_kb_sweep: tuple[int, ...] = (2, 8, 32, 128, 512),
    banks_sweep: tuple[int, ...] = (1, 4, 16, 64),
    total_kb: int = 512,
    config: MultiplierConfig = PC3_TR,
    fmt: FloatFormat = BFLOAT16,
    cacti: CactiLite | None = None,
) -> list[dict[str, object]]:
    """Area breakdown rows: SRAM share vs other digital (Fig. 8).

    Two sweeps, matching the paper's reading of the figure:

    * **bank width** at a fixed bank count — "when the SRAM's width is
      increased, its area [grows] quadratically while the number of PE
      increases linearly", so the SRAM share rises;
    * **bank count at fixed total capacity** (512 kB split into N banks)
      — total PEs grow only with sqrt(N) while per-bank overheads grow
      with N, so "the area becomes dominated by other digital circuits".
    """
    cacti = cacti or CactiLite()
    rows: list[dict[str, object]] = []
    for kb in bank_kb_sweep:
        design = DaismDesign(banks=4, bank_kb=kb, config=config, fmt=fmt)
        bd = design.area_breakdown(cacti)
        rows.append(
            {
                "sweep": "bank_kb",
                "banks": 4,
                "bank_kb": kb,
                **bd.as_dict(),
                "total": bd.total,
                "sram_fraction": bd.sram_fraction,
            }
        )
    for banks in banks_sweep:
        if total_kb % banks:
            raise ValueError(f"total capacity {total_kb} kB does not split into {banks} banks")
        design = DaismDesign(banks=banks, bank_kb=total_kb // banks, config=config, fmt=fmt)
        bd = design.area_breakdown(cacti)
        rows.append(
            {
                "sweep": "banks",
                "banks": banks,
                "bank_kb": total_kb // banks,
                **bd.as_dict(),
                "total": bd.total,
                "sram_fraction": bd.sram_fraction,
            }
        )
    return rows


def pareto_front(points):
    """Cycles-vs-area Pareto-optimal subset of design points.

    A point survives iff no other point is at least as good on both axes
    and strictly better on one — the designs a user would actually pick
    from the trade-off.  Accepts any objects with ``cycles`` and
    ``area_mm2`` attributes (:class:`DesignPoint`,
    :class:`~repro.arch.dse.EvaluatedDesign`, ...), returned sorted by
    cycles.  Exact duplicates do not dominate each other, so tied
    optima all survive.
    """
    front = []
    for p in points:
        dominated = any(
            (o.cycles <= p.cycles and o.area_mm2 < p.area_mm2)
            or (o.cycles < p.cycles and o.area_mm2 <= p.area_mm2)
            for o in points
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.cycles)


def table2(
    layer: ConvLayer | None = None, cacti: CactiLite | None = None
) -> list[dict[str, object]]:
    """Table II: DAISM 16x8 kB / 16x32 kB vs published Z-PIM / T-PIM."""
    layer = layer or vgg8_conv1()
    cacti = cacti or CactiLite()
    rows: list[dict[str, object]] = []
    for bank_kb in (8, 32):
        design = DaismDesign(banks=16, bank_kb=bank_kb)
        gops = design.gops(layer)
        rows.append(
            {
                "Architecture": "DAISM",
                "Config": f"16x{bank_kb}kB",
                "Computations": "bit-parallel",
                "Node [nm]": design.node.feature_nm,
                "Area [mm2]": design.area_mm2(cacti),
                "GE Area [mm2]": design.ge_area_mm2(cacti),
                "Clock [MHz]": (design.clock_hz / 1e6, design.clock_hz / 1e6),
                "Supply [V]": (design.node.vdd, design.node.vdd),
                "GOPS": (gops, gops),
                "GOPS/mW": (design.gops_per_mw(layer, cacti), design.gops_per_mw(layer, cacti)),
                "GOPS/mm2": (design.gops_per_mm2(layer, cacti), design.gops_per_mm2(layer, cacti)),
            }
        )
    for baseline in pim_baselines():
        row = baseline.row()
        row["Config"] = "—"
        rows.append(row)
    return rows


def table3_rows() -> list[dict[str, str]]:
    """Table III: qualitative comparison of accelerator families."""
    return [
        {
            "Family": "DAISM",
            "Data Movement": "None",
            "Type of Computation": "Digital",
            "Memory Technology": "Legacy",
            "Memory Reads": "Single",
        },
        {
            "Family": "Digital Multipliers",
            "Data Movement": "Required",
            "Type of Computation": "Digital",
            "Memory Technology": "Legacy",
            "Memory Reads": "Single",
        },
        {
            "Family": "Analog PIM",
            "Data Movement": "None",
            "Type of Computation": "Analog",
            "Memory Technology": "Novel",
            "Memory Reads": "Single",
        },
        {
            "Family": "SRAM Digital PIM",
            "Data Movement": "None",
            "Type of Computation": "Digital",
            "Memory Technology": "Legacy",
            "Memory Reads": "Multiple",
        },
    ]
