"""The DAISM accelerator model (Sec. IV + Sec. V-C of the paper).

A :class:`DaismDesign` is one point of the paper's design space: ``banks``
square compute-SRAM banks of ``bank_kb`` each, running one multiplier
configuration on one datatype.  The model provides:

* **geometry** — PEs per bank and in total (a PE is one result slot of
  the SRAM row plus its accumulator/exponent slice);
* **performance** — exact cycle counts and utilisation for a conv layer,
  via :mod:`repro.arch.layout_mapper`;
* **area** — compute SRAM (CACTI-lite) + per-PE digital + per-bank
  overheads + scratchpads/control, with the Fig. 8 breakdown;
* **energy/power** — per-MAC energy built from the Fig. 5 multiplier
  path plus the architecture-level costs (exponent handling, partial-sum
  read-modify-write, accumulation, input streaming), giving Table II's
  GOPS/mW.

Geometry conventions (see DESIGN.md §5): kernel elements occupy
``padded_lines`` wordlines; the PE pitch is the *datatype* width (16 bits
for bfloat16), which reproduces the paper's PE counts (512 PEs for
16x32 kB) and bank capacities (128x256 elements in 512 kB).
"""

from __future__ import annotations

import dataclasses
import functools

from ..core.config import PC3_TR, MultiplierConfig
from ..energy import components
from ..energy.cacti_lite import CactiLite
from ..energy.multiplier_energy import daism_multiplier_energy
from ..energy.technology import NODE_45NM, TechNode, ge_area_mm2
from ..formats.floatfmt import BFLOAT16, FloatFormat
from ..sram.layout import KernelLayout
from .layout_mapper import MappingResult, map_layer
from .workloads import ConvLayer

__all__ = ["DaismDesign", "AreaBreakdown"]

#: Partial sums are read-modified-written in per-PE psum buffers (each PE
#: owns its filter's output tile).  Successive element rows touch
#: different output coordinates, so psums cannot stay in a register — but
#: the buffer is banked per PE, so each access hits a small array.
PSUM_BUFFER_BYTES = 2 * 1024

#: Control + clock distribution energy per MAC [pJ] (fitted; see DESIGN.md).
CONTROL_CLOCK_PJ_PER_MAC = 0.50


@dataclasses.dataclass(frozen=True)
class AreaBreakdown:
    """On-chip area split used by Fig. 8 [mm^2]."""

    sram: float
    pe_digital: float
    bank_overhead: float
    scratchpad_control: float

    @property
    def total(self) -> float:
        """Total on-chip area [mm^2]."""
        return self.sram + self.pe_digital + self.bank_overhead + self.scratchpad_control

    @property
    def sram_fraction(self) -> float:
        """Compute-SRAM share of the total area."""
        return self.sram / self.total

    @property
    def digital_fraction(self) -> float:
        """Everything-but-SRAM share of the total area."""
        return 1.0 - self.sram_fraction

    def as_dict(self) -> dict[str, float]:
        """The component areas as a plain dict (report rows)."""
        return {
            "sram": self.sram,
            "pe_digital": self.pe_digital,
            "bank_overhead": self.bank_overhead,
            "scratchpad_control": self.scratchpad_control,
        }


@dataclasses.dataclass(frozen=True)
class DaismDesign:
    """One DAISM design point (e.g. the paper's ``16 x 8 kB`` PC3_tr)."""

    banks: int = 16
    bank_kb: int = 8
    config: MultiplierConfig = PC3_TR
    fmt: FloatFormat = BFLOAT16
    clock_hz: float = 1.0e9
    node: TechNode = NODE_45NM

    def __post_init__(self) -> None:
        if self.banks < 1 or self.bank_kb < 1:
            raise ValueError("banks and bank_kb must be positive")
        CactiLite.square_geometry(self.bank_bytes)  # validates squareness

    # -- geometry -----------------------------------------------------------

    @property
    def bank_bytes(self) -> int:
        """Capacity of one compute bank [bytes]."""
        return self.bank_kb * 1024

    @property
    def total_sram_bytes(self) -> int:
        """Compute SRAM across all banks [bytes]."""
        return self.banks * self.bank_bytes

    @property
    def side_bits(self) -> int:
        """Side length of the square bank array [bits]."""
        side, _ = CactiLite.square_geometry(self.bank_bytes)
        return side

    @property
    def layout(self) -> KernelLayout:
        """Per-element wordline layout of this config/datatype."""
        return KernelLayout(self.config, self.fmt.significand_bits)

    @property
    def pe_slot_bits(self) -> int:
        """PE pitch: one result slot per datatype width (16 b for bf16)."""
        return max(self.fmt.total_bits, self.layout.word_bits)

    @property
    def pes_per_bank(self) -> int:
        """Result slots (PEs) one bank computes per cycle."""
        return self.side_bits // self.pe_slot_bits

    @property
    def total_pes(self) -> int:
        """PEs across all banks (peak MACs per cycle)."""
        return self.banks * self.pes_per_bank

    @property
    def element_rows_per_bank(self) -> int:
        """Kernel element rows (line groups) one bank holds."""
        return self.side_bits // self.layout.padded_lines

    @property
    def kernel_capacity(self) -> int:
        """Kernel elements one bank holds at element-slot granularity."""
        slots = self.side_bits // self.layout.word_bits
        return slots * self.element_rows_per_bank

    @property
    def name(self) -> str:
        """Design label, e.g. ``DAISM 16x8kB PC3_tr bfloat16``."""
        return f"DAISM {self.banks}x{self.bank_kb}kB {self.config.name} {self.fmt.name}"

    # -- performance ---------------------------------------------------------

    @functools.lru_cache(maxsize=1024)
    def map_conv(self, layer: ConvLayer) -> MappingResult:
        """Map a conv layer onto this design (exact cycles/utilisation).

        Memoized: design and layer are frozen value objects, and the
        per-layer protocol accessors below each read one field of the
        same mapping — without the cache a ``run_network`` call would
        re-run the mapper five times per layer.
        """
        return map_layer(
            layer,
            pes_per_row=self.pes_per_bank,
            banks=self.banks,
            bank_element_rows=self.element_rows_per_bank,
        )

    # The per-layer protocol surface (repro.arch.model.AcceleratorModel)
    # is a thin view over one map_conv result.

    def cycles(self, layer: ConvLayer) -> int:
        """Single-image cycles (busiest bank) for one layer."""
        return self.map_conv(layer).cycles

    def steady_cycles(self, layer: ConvLayer) -> int:
        """Sustained cycles per image at large batch (bank-balanced)."""
        return self.map_conv(layer).throughput_cycles

    def macs(self, layer: ConvLayer) -> int:
        """MACs issued for one layer (zero-padding taps bypassed)."""
        return self.map_conv(layer).macs

    def utilization(self, layer: ConvLayer) -> float:
        """Single-image utilisation of the PE array on one layer."""
        return self.map_conv(layer).utilization

    def passes(self, layer: ConvLayer) -> int:
        """Kernel load passes when the layer exceeds the compute SRAM."""
        return self.map_conv(layer).passes

    def latency_s(self, layer: ConvLayer) -> float:
        """Single-image latency for one layer."""
        return self.map_conv(layer).cycles / self.clock_hz

    def gops(self, layer: ConvLayer | None = None) -> float:
        """Sustained GOPS (2 ops per MAC) at steady-state utilisation.

        Without a layer, peak GOPS (utilisation 1) is returned.
        """
        peak = 2.0 * self.total_pes * self.clock_hz / 1e9
        if layer is None:
            return peak
        return peak * self.map_conv(layer).throughput_utilization

    # -- area ------------------------------------------------------------------

    def area_breakdown(self, cacti: CactiLite | None = None) -> AreaBreakdown:
        """Fig. 8: compute SRAM vs the other digital circuits."""
        cacti = cacti or CactiLite()
        return AreaBreakdown(
            sram=self.banks * cacti.area_mm2(self.bank_bytes),
            pe_digital=self.total_pes * components.pe_digital_area_mm2(),
            bank_overhead=self.banks * components.bank_overhead_area_mm2(),
            scratchpad_control=components.scratchpad_control_area_mm2(),
        )

    def area_mm2(self, cacti: CactiLite | None = None) -> float:
        """Total on-chip area."""
        return self.area_breakdown(cacti).total

    def ge_area_mm2(self, cacti: CactiLite | None = None) -> tuple[float, float]:
        """ITRS gate-equivalent area (Table II normalisation)."""
        return ge_area_mm2(self.area_mm2(cacti), self.node)

    # -- energy / power -----------------------------------------------------------

    def energy_per_mac_pj(self, cacti: CactiLite | None = None) -> dict[str, float]:
        """Architecture-level energy per MAC, itemised [pJ].

        The multiplier path is the Fig. 5 model; on top of it every MAC
        pays exponent handling, a partial-sum read-modify-write in the
        psum buffer, the accumulator add, and a control/clock share.
        """
        cacti = cacti or CactiLite()
        mult = daism_multiplier_energy(self.config, self.fmt, self.bank_bytes, cacti)
        psum_word = cacti.word_read_energy_pj(PSUM_BUFFER_BYTES, 32)
        return {
            "multiplier_path": mult.total_pj,
            "exponent_handling": components.exponent_handling_energy_pj(self.fmt),
            "accumulator": components.accumulator_energy_pj(self.fmt),
            "psum_rmw": 2.0 * psum_word,
            "control_clock": CONTROL_CLOCK_PJ_PER_MAC,
        }

    def power_mw(self, utilization: float = 1.0, cacti: CactiLite | None = None) -> float:
        """Dynamic power at a given sustained utilisation."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        e_mac = sum(self.energy_per_mac_pj(cacti).values())
        macs_per_s = self.total_pes * self.clock_hz * utilization
        return e_mac * macs_per_s * 1e-9  # pJ * 1/s -> mW

    def gops_per_mw(self, layer: ConvLayer | None = None, cacti: CactiLite | None = None) -> float:
        """Table II's energy-efficiency metric."""
        util = 1.0 if layer is None else self.map_conv(layer).throughput_utilization
        power = self.power_mw(util, cacti)
        return self.gops(layer) / power if power else 0.0

    def gops_per_mm2(self, layer: ConvLayer | None = None, cacti: CactiLite | None = None) -> float:
        """Table II's area-efficiency metric."""
        return self.gops(layer) / self.area_mm2(cacti)

    def __str__(self) -> str:
        return self.name
