"""Cycle-accurate simulation of a banked DAISM executing a conv layer.

The analytic mapper (:mod:`repro.arch.layout_mapper`) counts activation
events under ideal input delivery.  This module simulates the actual
per-input streaming of Fig. 3 — scratchpad → per-bank register file →
address decoder — with two effects the analytic model abstracts away:

* **input delivery latency**: fetching the next input into a bank's
  register file takes ``spad_latency`` cycles; with double buffering the
  fetch overlaps compute, so a bank only stalls when an input activates
  fewer rows than the fetch takes (thin work per input);
* **zero-input bypass**: "multiplications by zero are bypassed"
  (Sec. III-C) — zero inputs are never streamed, so post-ReLU sparsity
  directly removes cycles (the knob Z-PIM/T-PIM exploit bit-serially,
  available here for free at word granularity).

With ``spad_latency=1`` and dense inputs the simulation reproduces the
analytic mapper cycle-for-cycle — asserted in the test suite — which is
the cross-validation that justifies using the fast mapper everywhere
else.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .layout_mapper import _assign_rows, _row_activations, build_rows, tap_masks
from .workloads import ConvLayer

__all__ = ["CycleSimResult", "simulate_layer"]


@dataclasses.dataclass(frozen=True)
class CycleSimResult:
    """Outcome of one cycle-accurate run."""

    layer: ConvLayer
    banks: int
    pes_per_row: int
    cycles: int
    compute_cycles: int
    stall_cycles: int
    skipped_inputs: int
    bank_cycles: tuple[int, ...]
    macs_issued: int

    @property
    def utilization(self) -> float:
        """MACs issued over PE-cycles of the busiest-bank schedule."""
        total = self.cycles * self.banks * self.pes_per_row
        return self.macs_issued / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"{self.layer.name}: {self.cycles} cycles "
            f"({self.stall_cycles} stalled, {self.skipped_inputs} zero inputs skipped)"
        )


def _rows_per_input(
    layer: ConvLayer,
    rows: list[list[tuple[int, int, int, int]]],
    bank_of_row: list[int],
    banks: int,
) -> list[np.ndarray]:
    """Per bank: (C, H, W) array of how many of its rows each input activates."""
    masks = tap_masks(layer)
    counts = [
        np.zeros((layer.in_channels, layer.height, layer.width), dtype=np.int32)
        for _ in range(banks)
    ]
    for row, bank in zip(rows, bank_of_row):
        by_channel: dict[int, np.ndarray] = {}
        for c, kh, kw, _cnt in row:
            mask = masks[(kh, kw)]
            by_channel[c] = by_channel.get(c, False) | mask
        for c, union in by_channel.items():
            counts[bank][c] += union.astype(np.int32)
    return counts


def _useful_macs(
    layer: ConvLayer,
    rows: list[list[tuple[int, int, int, int]]],
    bank_of_row: list[int],
    banks: int,
    nonzero: np.ndarray | None,
) -> int:
    """MACs actually issued (zero inputs bypassed)."""
    masks = tap_masks(layer)
    total = 0
    for row, _bank in zip(rows, bank_of_row):
        for c, kh, kw, cnt in row:
            mask = masks[(kh, kw)]
            if nonzero is not None:
                mask = mask & nonzero[c]
            total += int(mask.sum()) * cnt
    return total


def simulate_layer(
    layer: ConvLayer,
    pes_per_row: int,
    banks: int = 1,
    spad_latency: int = 1,
    inputs: np.ndarray | None = None,
    distribution: str = "round_robin",
) -> CycleSimResult:
    """Cycle-accurate run of one layer on a banked DAISM array.

    Parameters
    ----------
    layer:
        Convolution shape.
    pes_per_row:
        Kernel-element slots per SRAM row.
    banks:
        Bank count (one input per bank per cycle).
    spad_latency:
        Cycles to deliver the next input element into a bank's register
        file.  With double buffering the bank stalls only when an input's
        row count is below this latency.
    inputs:
        Optional ``(C, H, W)`` input tensor; exact zeros are bypassed
        (never streamed).  ``None`` simulates a dense input.
    distribution:
        Row-to-bank assignment policy, matching
        :func:`repro.arch.layout_mapper.map_layer` (``round_robin``,
        ``lpt`` or ``block``) so the two models stay comparable under
        every policy.
    """
    if pes_per_row < 1 or banks < 1 or spad_latency < 1:
        raise ValueError("pes_per_row, banks and spad_latency must be positive")
    if inputs is not None:
        inputs = np.asarray(inputs)
        expected = (layer.in_channels, layer.height, layer.width)
        if inputs.shape != expected:
            raise ValueError(f"inputs shape {inputs.shape} != layer shape {expected}")

    rows = build_rows(layer, pes_per_row)
    if distribution == "round_robin":
        bank_of_row = [i % banks for i in range(len(rows))]
    else:
        masks = tap_masks(layer)
        activations = [_row_activations(row, masks) for row in rows]
        bank_of_row = _assign_rows(activations, banks, distribution)
    per_input = _rows_per_input(layer, rows, bank_of_row, banks)

    nonzero = None if inputs is None else inputs != 0
    skipped = 0
    bank_cycles = []
    compute_total = 0
    stall_total = 0
    for bank in range(banks):
        counts = per_input[bank]
        if nonzero is not None:
            streamed = counts[nonzero]
            skipped += int(((counts > 0) & ~nonzero).sum())
        else:
            streamed = counts.ravel()
        streamed = streamed[streamed > 0]
        compute = int(streamed.sum())
        # Double-buffered delivery: each streamed input occupies the bank
        # for max(rows, spad_latency) cycles.
        occupied = int(np.maximum(streamed, spad_latency).sum())
        bank_cycles.append(occupied)
        compute_total += compute
        stall_total += occupied - compute

    macs = _useful_macs(layer, rows, bank_of_row, banks, nonzero)
    # The loop above counts a zero input once per bank that wanted it;
    # report distinct skipped input elements instead.
    if nonzero is not None:
        skipped = int((~nonzero & (sum(per_input) > 0)).sum())

    return CycleSimResult(
        layer=layer,
        banks=banks,
        pes_per_row=pes_per_row,
        cycles=max(bank_cycles) if bank_cycles else 0,
        compute_cycles=compute_total,
        stall_cycles=stall_total,
        skipped_inputs=skipped,
        bank_cycles=tuple(bank_cycles),
        macs_issued=macs,
    )
