"""Optimisers for the numpy DNN stack."""

from __future__ import annotations

import numpy as np

from .layers import Parameter

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    The optimiser state stays in float32 regardless of the forward/backward
    arithmetic — on the accelerator, weight updates run on the host (the
    paper's datapath covers the GEMMs, not the optimiser).
    """

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v
            p.mark_updated()

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class Adam:
    """Adam optimiser (Kingma & Ba) in float32 host arithmetic.

    Useful for the approximate-training studies: Adam's per-parameter
    scaling partially compensates the systematic underestimate the OR
    multiplier introduces into gradients.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.parameters = list(parameters)
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update from the accumulated gradients."""
        beta1, beta2 = self.betas
        self._t += 1
        bias1 = 1.0 - beta1 ** self._t
        bias2 = 1.0 - beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            p.mark_updated()

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
