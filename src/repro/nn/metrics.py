"""Evaluation metrics beyond top-1 accuracy.

Used by the accuracy studies to look *inside* a Fig. 4 delta: whether
approximate arithmetic degrades specific classes (it shifts logits
systematically downward, which affects near-boundary samples first).
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_accuracy", "confusion_matrix", "per_class_accuracy"]


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of samples whose true label is among the top-k logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or len(logits) != len(labels):
        raise ValueError("logits must be (N, C) matching N labels")
    if not 1 <= k <= logits.shape[1]:
        raise ValueError(f"k must be in [1, {logits.shape[1]}]")
    topk = np.argsort(logits, axis=1)[:, -k:]
    return float(np.mean([label in row for label, row in zip(labels, topk)]))


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int | None = None
) -> np.ndarray:
    """``M[i, j]`` = count of samples with true class i predicted as j."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if num_classes is None:
        num_classes = int(max(predictions.max(initial=0), labels.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_accuracy(predictions: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Recall per true class (NaN for classes absent from ``labels``)."""
    matrix = confusion_matrix(predictions, labels)
    totals = matrix.sum(axis=1)
    with np.errstate(invalid="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)
