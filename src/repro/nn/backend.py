"""Pluggable arithmetic backends for the DNN stack.

Every multiply-heavy operation in :mod:`repro.nn` (conv, linear) funnels
through a single ``matmul`` so the arithmetic can be swapped without
touching model code:

* exact float32 (the paper's baseline),
* quantised-only (bfloat16 storage, exact products),
* full DAISM (bfloat16 + approximate in-SRAM products).

A default backend can be set temporarily with :func:`use_backend` —
this is how the Fig. 4 benchmark runs the *same* trained model under
different arithmetic.  The default is **thread-local**: concurrent
in-process sweeps (e.g. threads evaluating one model under different
configurations) each see their own default and cannot race each other's
``use_backend`` scopes.  A thread that never set a default falls back to
exact float32.
"""

from __future__ import annotations

import contextlib
import threading

from ..core.config import MultiplierConfig
from ..core.gemm import ApproxMatmul, ExactMatmul, MatmulBackend, QuantizedMatmul
from ..formats.floatfmt import BFLOAT16, FloatFormat

__all__ = [
    "default_backend",
    "set_default_backend",
    "use_backend",
    "inherit_default_backend",
    "daism_backend",
    "exact_backend",
    "quantized_backend",
    "bfp_backend",
    "BfpMatmul",
]

#: Fallback for threads that never set their own default.
_FALLBACK: MatmulBackend = ExactMatmul()

_STATE = threading.local()


def default_backend() -> MatmulBackend:
    """The backend used when a layer is not given an explicit one.

    Reads this thread's default; threads that have not called
    :func:`set_default_backend` (directly or via :func:`use_backend`)
    see the exact float32 fallback.
    """
    backend = getattr(_STATE, "backend", None)
    return backend if backend is not None else _FALLBACK


def set_default_backend(backend: MatmulBackend) -> MatmulBackend:
    """Set *this thread's* default backend; returns the previous one."""
    previous = default_backend()
    _STATE.backend = backend
    return previous


@contextlib.contextmanager
def use_backend(backend: MatmulBackend):
    """Temporarily switch the default backend (context manager)."""
    previous = set_default_backend(backend)
    try:
        yield backend
    finally:
        set_default_backend(previous)


def inherit_default_backend():
    """Capture this thread's default backend for worker-thread inheritance.

    The default backend is thread-local, so a worker thread spawned
    inside a :func:`use_backend` scope would otherwise fall back to
    exact float32 — silently running the wrong arithmetic.  This returns
    a zero-argument callable that installs the *capturing* thread's
    default into whichever thread invokes it; pass it as a pool
    initializer::

        with use_backend(daism_backend(PC3_TR)):
            pool = ThreadPoolExecutor(4, initializer=inherit_default_backend())

    Every pool worker then sees the scope's backend.  The capture is a
    snapshot: later ``use_backend``/``set_default_backend`` calls in the
    parent thread do not retroactively change already-initialised
    workers.
    """
    captured = default_backend()

    def install() -> None:
        set_default_backend(captured)

    return install


def exact_backend() -> MatmulBackend:
    """Exact float32 arithmetic."""
    return ExactMatmul()


def quantized_backend(
    fmt: FloatFormat = BFLOAT16, kernel: str | None = None
) -> MatmulBackend:
    """Narrow storage, exact products (quantisation-only ablation).

    ``kernel`` optionally routes the exact products through a registered
    packed GEMM kernel instead of dense BLAS (see
    :class:`repro.core.gemm.QuantizedMatmul`); ``"auto"`` resolves to
    dense BLAS — exact products have no faster certified tier.
    """
    return QuantizedMatmul(fmt, kernel=kernel)


def daism_backend(
    config: MultiplierConfig, fmt: FloatFormat = BFLOAT16, kernel: str | None = None
) -> MatmulBackend:
    """Full DAISM arithmetic: ``fmt`` storage + approximate products.

    ``kernel`` selects a registered GEMM kernel by name — ``None`` is
    the bit-exact default tier (``float_table_native`` when numba is
    active, ``float_table`` otherwise — identical bits either way);
    ``"blas_factored"`` opts into the BLAS exact+correction fast path
    with its documented parity tolerance; ``"auto"`` lets the certified
    tier router pick per shape (:mod:`repro.core.router`).
    """
    return ApproxMatmul(fmt=fmt, config=config, kernel=kernel)


class BfpMatmul(MatmulBackend):
    """Block floating point GEMM (Sec. IV-B): one exponent per matrix.

    Each operand matrix is quantised to a single BFP block (shared
    exponent, integer mantissas); the integer mantissa products run
    through the configured approximate multiplier.  This is the "any
    other FP representation can make use of this multiplier" claim made
    concrete.
    """

    def __init__(self, config: MultiplierConfig | None = None, mantissa_bits: int = 8):
        from ..formats.bfp import BlockFloat, bfp_matmul

        self._block_float = BlockFloat
        self._bfp_matmul = bfp_matmul
        self.config = config
        self.mantissa_bits = mantissa_bits

    @property
    def name(self) -> str:  # type: ignore[override]
        suffix = self.config.name if self.config else "exact"
        return f"bfp{self.mantissa_bits}_{suffix}"

    @property
    def prepare_key(self) -> str:  # type: ignore[override]
        return f"bfp{self.mantissa_bits}"

    def prepare(self, b):
        """Quantise a static operand into its BFP block once."""
        if isinstance(b, self._block_float):
            if b.mantissa_bits != self.mantissa_bits:
                raise ValueError(
                    f"block has {b.mantissa_bits}-bit mantissas, backend expects "
                    f"{self.mantissa_bits}"
                )
            return b
        return self._block_float.from_float(b, self.mantissa_bits)

    def matmul(self, a, b):
        import numpy as np

        block_a = a if isinstance(a, self._block_float) else self._block_float.from_float(
            a, self.mantissa_bits
        )
        block_b = self.prepare(b)
        return self._bfp_matmul(block_a, block_b, config=self.config).astype(np.float32)


def bfp_backend(
    config: MultiplierConfig | None = None, mantissa_bits: int = 8
) -> MatmulBackend:
    """Block-floating-point backend (optionally with approximate products)."""
    return BfpMatmul(config=config, mantissa_bits=mantissa_bits)
