"""Weight (de)serialisation for the numpy DNN stack.

Models are plain Python objects; their state is the ordered list of
parameter tensors plus BatchNorm running statistics.  ``save_weights``
writes a single ``.npz``; ``load_weights`` restores into an identically
constructed model (same builder, same seed structure).

``state_bytes`` / ``load_state_bytes`` are the in-memory twins of the
file pair: one ``.npz``-encoded buffer holding the full model state.
The serving fleet (:mod:`repro.runtime.fleet`) ships model snapshots to
worker processes as these buffers — a single picklable ``bytes`` object
that round-trips every array bit-for-bit, so a worker-rebuilt model
compiles to a plan whose prepared weights match the parent's exactly.
"""

from __future__ import annotations

import io

import numpy as np

from .layers import BatchNorm2d, Module

__all__ = [
    "state_dict",
    "load_state_dict",
    "save_weights",
    "load_weights",
    "state_bytes",
    "load_state_bytes",
]


def _batchnorms(model: Module) -> list[BatchNorm2d]:
    found: list[BatchNorm2d] = []

    def walk(module: Module) -> None:
        if isinstance(module, BatchNorm2d):
            found.append(module)
        for value in vars(module).values():
            if isinstance(value, Module):
                walk(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Module):
                        walk(item)

    walk(model)
    return found


def state_dict(model: Module) -> dict[str, np.ndarray]:
    """Flatten a model's learnable + running state into named arrays."""
    state: dict[str, np.ndarray] = {}
    for i, p in enumerate(model.parameters()):
        state[f"param_{i:03d}_{p.name}"] = p.data
    for i, bn in enumerate(_batchnorms(model)):
        state[f"bn_{i:03d}_running_mean"] = bn.running_mean
        state[f"bn_{i:03d}_running_var"] = bn.running_var
    return state


def load_state_dict(model: Module, state: dict[str, np.ndarray]) -> None:
    """Restore state produced by :func:`state_dict` into ``model``.

    The model must have the same architecture (same parameter order and
    shapes); mismatches raise ``ValueError``.
    """
    params = model.parameters()
    param_keys = sorted(k for k in state if k.startswith("param_"))
    if len(param_keys) != len(params):
        raise ValueError(
            f"state has {len(param_keys)} parameters, model has {len(params)}"
        )
    for key, p in zip(param_keys, params):
        data = state[key]
        if data.shape != p.data.shape:
            raise ValueError(f"{key}: shape {data.shape} != model {p.data.shape}")
        p.data[...] = data
        p.mark_updated()
    bns = _batchnorms(model)
    for i, bn in enumerate(bns):
        mean_key = f"bn_{i:03d}_running_mean"
        var_key = f"bn_{i:03d}_running_var"
        if mean_key in state:
            bn.running_mean = state[mean_key].copy()
            bn.running_var = state[var_key].copy()


def save_weights(model: Module, path: str) -> None:
    """Write the model state to an ``.npz`` file."""
    np.savez(path, **state_dict(model))


def load_weights(model: Module, path: str) -> None:
    """Load an ``.npz`` written by :func:`save_weights` into ``model``."""
    with np.load(path) as data:
        load_state_dict(model, dict(data))


def state_bytes(model: Module) -> bytes:
    """Encode the model state as one ``.npz`` buffer (see module docs)."""
    buf = io.BytesIO()
    np.savez(buf, **state_dict(model))
    return buf.getvalue()


def load_state_bytes(model: Module, blob: bytes) -> None:
    """Restore a :func:`state_bytes` buffer into ``model`` (exact)."""
    with np.load(io.BytesIO(blob)) as data:
        load_state_dict(model, dict(data))
