"""Layer modules with explicit forward/backward (no autograd framework).

A tiny PyTorch-shaped stack: :class:`Module` with parameters,
``forward``/``backward`` pairs that cache what they need, and containers
(:class:`Sequential`, :class:`Residual`).  Multiply-heavy layers accept a
:class:`~repro.core.gemm.MatmulBackend` (or fall back to the process
default), which is the single switch between exact float32 and the DAISM
approximate datapath.
"""

from __future__ import annotations

import numpy as np

from ..core.gemm import MatmulBackend
from . import functional as F
from .backend import default_backend

__all__ = [
    "Parameter",
    "Module",
    "Conv2d",
    "Linear",
    "ReLU",
    "MaxPool2d",
    "GlobalAvgPool",
    "BatchNorm2d",
    "LayerNorm",
    "Softmax",
    "MultiHeadAttention",
    "Dropout",
    "Flatten",
    "Sequential",
    "Residual",
]


class Parameter:
    """A learnable tensor with its gradient accumulator.

    ``version`` counts value updates: the optimisers and the weight
    loaders call :meth:`mark_updated` after mutating ``data``, and the
    layers' prepared-weight caches use the counter to decide whether
    their packed copy is still current.  Code that writes ``data`` in
    place by hand must call :meth:`mark_updated` as well.
    """

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.version = 0

    def mark_updated(self) -> None:
        """Record that ``data`` changed, invalidating prepared caches."""
        self.version += 1

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.data.shape})"


def _plan_spec(kind: str, module: "Module | None" = None, **attrs):
    """Build an :class:`~repro.runtime.ops.OpSpec` (imported lazily).

    The runtime package imports the layers for plan capture, so the
    layers reach the spec type through a deferred import to keep the
    dependency one-way at import time.
    """
    from ..runtime.ops import OpSpec

    return OpSpec(kind, attrs, module)


class Module:
    """Base class: a forward/backward pair plus parameter discovery."""

    training = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def to_plan_op(self):
        """Describe this layer for plan capture (see :mod:`repro.runtime`).

        Leaf layers return an :class:`~repro.runtime.ops.OpSpec` naming
        their kind and static shape attributes; the runtime compiler and
        the accelerator co-sim both consume that one description.
        Containers are walked structurally by
        :func:`repro.runtime.plan.trace` instead.
        """
        raise TypeError(f"{type(self).__name__} does not describe a plan op")

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for value in vars(self).values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


def _he_init(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    return (rng.standard_normal(shape) * np.sqrt(2.0 / fan_in)).astype(np.float32)


class _PreparedWeightCache:
    """Backend-prepared (e.g. packed) views of one Parameter, cached.

    Entries are keyed by ``(backend.prepare_key, orientation)`` and
    stamped with the parameter's version: an optimiser step (or weight
    load) bumps the version and silently invalidates every entry, while
    repeated inference reuses the prepared operand with zero re-quantise
    or decompose work.  Backends with the same ``prepare_key`` (every
    DAISM config over one format — whichever GEMM kernel it selects —
    plus the quantised backend of that format) share a single entry: a
    cached ``PackedTensor`` carries the planes, the dense values and the
    scale plane, which covers every kernel in
    :mod:`repro.core.kernels`.
    """

    _MAX_ENTRIES = 8

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], tuple[int, object]] = {}

    def get(self, backend: MatmulBackend, param: Parameter, orientation: str, build):
        key = (backend.prepare_key, orientation)
        hit = self._entries.get(key)
        if hit is not None and hit[0] == param.version:
            return hit[1]
        built = build()
        if isinstance(built, (list, tuple)):
            # Grouped layers prepare one operand per channel group under
            # a single cache entry, invalidated together.
            prepared = tuple(backend.prepare(b) for b in built)
        else:
            prepared = backend.prepare(built)
        if key not in self._entries and len(self._entries) >= self._MAX_ENTRIES:
            self._entries.pop(next(iter(self._entries)))  # FIFO, evict one
        self._entries[key] = (param.version, prepared)
        return prepared


class Conv2d(Module):
    """2-D convolution via the backend GEMM (He initialisation).

    ``groups > 1`` makes it a grouped convolution (``groups ==
    in_channels == out_channels`` is depthwise): the weight holds
    ``in_channels // groups`` channels per filter and the forward runs
    one batched approximate GEMM per group, each group's weight matrix
    prepared (packed) once and cached like the dense path.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 1,
        bias: bool = True,
        groups: int = 1,
        label: str | None = None,
        backend: MatmulBackend | None = None,
        rng: np.random.Generator | None = None,
    ):
        if groups < 1 or in_channels % groups or out_channels % groups:
            raise ValueError(
                f"groups={groups} must divide in_channels={in_channels} "
                f"and out_channels={out_channels}"
            )
        rng = rng or np.random.default_rng(0)
        fan_in = (in_channels // groups) * kernel * kernel
        self.weight = Parameter(
            _he_init(rng, (out_channels, in_channels // groups, kernel, kernel), fan_in),
            "conv.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), "conv.bias") if bias else None
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.label = label
        self.backend = backend
        self._cache: tuple | None = None
        self._prepared = _PreparedWeightCache()

    def to_plan_op(self):
        """Conv spec: channel/kernel/stride/padding/group geometry."""
        out_channels, channels_per_group, kernel, _ = self.weight.data.shape
        return _plan_spec(
            "conv2d",
            self,
            in_channels=channels_per_group * self.groups,
            out_channels=out_channels,
            kernel=kernel,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
            label=self.label,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        backend = self.backend or default_backend()
        f = self.weight.data.shape[0]
        if self.groups == 1:
            wmat = self._prepared.get(
                backend, self.weight, "fwd", lambda: self.weight.data.reshape(f, -1).T
            )
            out, cols = F.conv2d_forward(
                x, self.weight.data, self.bias.data if self.bias else None,
                self.stride, self.padding, backend, prepared_weight=wmat,
            )
            self._cache = (x.shape, cols)
            return out
        fg = f // self.groups
        wmats = self._prepared.get(
            backend, self.weight, "fwd",
            lambda: [
                np.ascontiguousarray(self.weight.data[g * fg : (g + 1) * fg].reshape(fg, -1).T)
                for g in range(self.groups)
            ],
        )
        out, cols_cache = F.grouped_conv2d_forward(
            x, self.weight.data, self.bias.data if self.bias else None,
            self.stride, self.padding, self.groups, backend, prepared_weights=wmats,
        )
        self._cache = (x.shape, cols_cache)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        backend = self.backend or default_backend()
        x_shape, cols = self._cache
        if self.groups > 1:
            dx, dw, db = F.grouped_conv2d_backward(
                grad, x_shape, cols, self.weight.data,
                self.stride, self.padding, self.groups, backend,
            )
        else:
            f = self.weight.data.shape[0]
            wrows = self._prepared.get(
                backend, self.weight, "bwd", lambda: self.weight.data.reshape(f, -1)
            )
            dx, dw, db = F.conv2d_backward(
                grad, x_shape, cols, self.weight.data, self.stride, self.padding, backend,
                prepared_weight=wrows,
            )
        self.weight.grad += dw
        if self.bias is not None:
            self.bias.grad += db
        return dx


class Linear(Module):
    """Fully connected layer via the backend GEMM."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        label: str | None = None,
        backend: MatmulBackend | None = None,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(
            _he_init(rng, (out_features, in_features), in_features), "linear.weight"
        )
        self.bias = Parameter(np.zeros(out_features), "linear.bias") if bias else None
        self.label = label
        self.backend = backend
        self._x: np.ndarray | None = None
        self._prepared = _PreparedWeightCache()

    def to_plan_op(self):
        """Linear spec: feature dimensions."""
        out_features, in_features = self.weight.data.shape
        return _plan_spec(
            "linear", self,
            in_features=in_features, out_features=out_features, label=self.label,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        backend = self.backend or default_backend()
        self._x = x
        wt = self._prepared.get(backend, self.weight, "fwd", lambda: self.weight.data.T)
        out = backend.matmul(x, wt)
        if self.bias is not None:
            out = out + self.bias.data[None, :]
        return out.astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        backend = self.backend or default_backend()
        if grad.ndim > 2:
            # Sequence inputs: fold the leading axes into rows for the
            # weight/bias gradients, keep the batched shape for dx.
            grad2 = np.ascontiguousarray(grad.reshape(-1, grad.shape[-1]))
            x2 = np.ascontiguousarray(self._x.reshape(-1, self._x.shape[-1]))
        else:
            grad2, x2 = grad, self._x
        self.weight.grad += backend.matmul(grad2.T, x2)
        if self.bias is not None:
            self.bias.grad += grad2.sum(axis=0)
        w = self._prepared.get(backend, self.weight, "bwd", lambda: self.weight.data)
        return backend.matmul(grad, w).astype(np.float32)


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def to_plan_op(self):
        """Elementwise spec (no attributes)."""
        return _plan_spec("relu", self)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad, 0.0).astype(np.float32)


class MaxPool2d(Module):
    """Non-overlapping max pooling."""

    def __init__(self, size: int = 2):
        self.size = size
        self._cache: tuple | None = None

    def to_plan_op(self):
        """Pooling spec: window size."""
        return _plan_spec("maxpool2d", self, size=self.size)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, arg = F.maxpool2d_forward(x, self.size)
        self._cache = (x.shape, arg)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, arg = self._cache
        return F.maxpool2d_backward(grad, arg, x_shape, self.size)


class GlobalAvgPool(Module):
    """Global average pooling to ``(N, C)``."""

    def __init__(self) -> None:
        self._shape: tuple | None = None

    def to_plan_op(self):
        """Pooling spec (no attributes)."""
        return _plan_spec("global_avg_pool", self)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return F.avgpool_global_forward(x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return F.avgpool_global_backward(grad, self._shape)


class BatchNorm2d(Module):
    """Batch normalisation over (N, H, W) per channel, with running stats."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5):
        self.gamma = Parameter(np.ones(channels), "bn.gamma")
        self.beta = Parameter(np.zeros(channels), "bn.beta")
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self.momentum = momentum
        self.eps = eps
        self._cache: tuple | None = None

    def to_plan_op(self):
        """Normalisation spec: channel count (stats captured at compile)."""
        return _plan_spec("batchnorm2d", self, channels=self.gamma.data.shape[0])

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std)
        out = self.gamma.data[None, :, None, None] * x_hat + self.beta.data[None, :, None, None]
        return out.astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std = self._cache
        n, _c, h, w = grad.shape
        m = n * h * w
        self.gamma.grad += (grad * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad.sum(axis=(0, 2, 3))

        g = grad * self.gamma.data[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        dx = (inv_std[None, :, None, None] / m) * (m * g - sum_g - x_hat * sum_gx)
        return dx.astype(np.float32)


class LayerNorm(Module):
    """Layer normalisation over the trailing feature axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.gamma = Parameter(np.ones(dim), "ln.gamma")
        self.beta = Parameter(np.zeros(dim), "ln.beta")
        self.eps = eps
        self._cache: tuple | None = None

    def to_plan_op(self):
        """Normalisation spec: feature dimension."""
        return _plan_spec("layernorm", self, dim=self.gamma.data.shape[0])

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, cache = F.layernorm_forward(x, self.gamma.data, self.beta.data, self.eps)
        self._cache = cache
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        dx, dgamma, dbeta = F.layernorm_backward(grad, self.gamma.data, self._cache)
        self.gamma.grad += dgamma
        self.beta.grad += dbeta
        return dx


class Softmax(Module):
    """Softmax over the trailing axis (stabilised, any rank)."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None

    def to_plan_op(self):
        """Elementwise-row spec (no attributes)."""
        return _plan_spec("softmax", self)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._probs = F.softmax(x).astype(np.float32)
        return self._probs

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._probs is None:
            raise RuntimeError("backward called before forward")
        return F.softmax_backward(grad, self._probs)


class MultiHeadAttention(Module):
    """Multi-head self-attention on ``(N, T, D)`` sequences.

    The QKV and output projections are :class:`Linear` layers (prepared
    approximate GEMMs over the batch-folded rows); the per-head
    ``Q K^T`` and ``A V`` products stream through the backend per
    (sample, head) pair via :func:`repro.nn.functional.attention_core`,
    so every multiply in the block lands on the DAISM datapath.
    """

    def __init__(
        self,
        d_model: int,
        heads: int,
        backend: MatmulBackend | None = None,
        rng: np.random.Generator | None = None,
    ):
        if d_model % heads:
            raise ValueError(f"d_model={d_model} not divisible by heads={heads}")
        rng = rng or np.random.default_rng(0)
        self.qkv = Linear(d_model, 3 * d_model, label="qkv_proj", backend=backend, rng=rng)
        self.out = Linear(d_model, d_model, label="attn_out", backend=backend, rng=rng)
        self.heads = heads
        self.scale = float(1.0 / np.sqrt(d_model // heads))
        self.backend = backend
        self._cache: tuple | None = None

    def to_plan_op(self):
        """Attention spec: model width and head count."""
        return _plan_spec(
            "attention", self, d_model=self.qkv.weight.data.shape[1], heads=self.heads
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        backend = self.backend or default_backend()
        d = x.shape[-1]
        qkv = self.qkv(x)
        q = F.split_heads(np.ascontiguousarray(qkv[..., :d]), self.heads)
        k = F.split_heads(np.ascontiguousarray(qkv[..., d : 2 * d]), self.heads)
        v = F.split_heads(np.ascontiguousarray(qkv[..., 2 * d :]), self.heads)
        context, probs = F.attention_core(q, k, v, backend, self.scale)
        self._cache = (q, k, v, probs)
        return self.out(F.merge_heads(context))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        backend = self.backend or default_backend()
        q, k, v, probs = self._cache
        d_context = F.split_heads(self.out.backward(grad), self.heads)
        dq, dk, dv = F.attention_core_backward(
            d_context, q, k, v, probs, backend, self.scale
        )
        d_qkv = np.concatenate(
            [F.merge_heads(dq), F.merge_heads(dk), F.merge_heads(dv)], axis=-1
        )
        return self.qkv.backward(d_qkv)


class Dropout(Module):
    """Inverted dropout (identity in eval mode).

    Besides regularisation, dropout increases activation sparsity — the
    very signal the DAISM zero-bypass exploits (see
    :mod:`repro.arch.scheduler`).
    """

    def __init__(self, p: float = 0.5, seed: int = 0):
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def to_plan_op(self):
        """Dropout spec — an identity at inference, elided from plans."""
        return _plan_spec("dropout", self, p=self.p)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return (x * self._mask).astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return (grad * self._mask).astype(np.float32)


class Flatten(Module):
    """``(N, ...) -> (N, prod)``."""

    def __init__(self) -> None:
        self._shape: tuple | None = None

    def to_plan_op(self):
        """Reshape spec (no attributes)."""
        return _plan_spec("flatten", self)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad.reshape(self._shape)


class Sequential(Module):
    """Chain of modules executed in order."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules:
            x = module(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad = module.backward(grad)
        return grad

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for module in self.modules:
            params.extend(module.parameters())
        return params

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for module in self.modules:
            module._set_mode(training)


class Residual(Module):
    """``y = f(x) + shortcut(x)`` — the ResNet building block."""

    def __init__(self, body: Module, shortcut: Module | None = None):
        self.body = body
        self.shortcut = shortcut

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.body(x)
        skip = self.shortcut(x) if self.shortcut is not None else x
        if main.shape != skip.shape:
            raise ValueError(f"residual shape mismatch: {main.shape} vs {skip.shape}")
        return (main + skip).astype(np.float32)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        d_main = self.body.backward(grad)
        d_skip = self.shortcut.backward(grad) if self.shortcut is not None else grad
        return (d_main + d_skip).astype(np.float32)

    def parameters(self) -> list[Parameter]:
        params = self.body.parameters()
        if self.shortcut is not None:
            params.extend(self.shortcut.parameters())
        return params

    def _set_mode(self, training: bool) -> None:
        self.training = training
        self.body._set_mode(training)
        if self.shortcut is not None:
            self.shortcut._set_mode(training)
