"""Model zoo for the accuracy study (Fig. 4's CNN suite, scaled down).

The paper evaluates "large CNNs" (ResNet-50-class) trained on ImageNet.
Offline we use the same architectural families at dataset-appropriate
scale: a LeNet-style CNN, a VGG-style CNN (the paper's own architecture
workload), a residual network, and an MLP.  The Fig. 4 benchmark trains
each in float32 and re-evaluates it under bfloat16 PC3_tr arithmetic.
"""

from __future__ import annotations

import numpy as np

from .layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Residual,
    Sequential,
)

__all__ = ["build_mlp", "build_lenet", "build_vgg_small", "build_mini_resnet", "model_zoo"]


def build_mlp(
    in_features: int = 32, hidden: int = 64, num_classes: int = 4, seed: int = 0
) -> Module:
    """Two-hidden-layer MLP."""
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(in_features, hidden, rng=rng),
        ReLU(),
        Linear(hidden, hidden, rng=rng),
        ReLU(),
        Linear(hidden, num_classes, rng=rng),
    )


def build_lenet(
    in_channels: int = 1, num_classes: int = 4, size: int = 16, seed: int = 0
) -> Module:
    """LeNet-style CNN: two conv+pool stages and two FC layers."""
    rng = np.random.default_rng(seed)
    feat = size // 4
    return Sequential(
        Conv2d(in_channels, 8, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(8, 16, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(16 * feat * feat, 32, rng=rng),
        ReLU(),
        Linear(32, num_classes, rng=rng),
    )


def build_vgg_small(
    in_channels: int = 1, num_classes: int = 4, size: int = 16, seed: int = 0
) -> Module:
    """VGG-style CNN: stacked 3x3 convs with BN, doubling widths."""
    rng = np.random.default_rng(seed)
    feat = size // 8
    return Sequential(
        Conv2d(in_channels, 16, 3, rng=rng),
        BatchNorm2d(16),
        ReLU(),
        MaxPool2d(2),
        Conv2d(16, 32, 3, rng=rng),
        BatchNorm2d(32),
        ReLU(),
        MaxPool2d(2),
        Conv2d(32, 64, 3, rng=rng),
        BatchNorm2d(64),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(64 * feat * feat, num_classes, rng=rng),
    )


def _res_block(channels: int, rng: np.random.Generator) -> Module:
    body = Sequential(
        Conv2d(channels, channels, 3, rng=rng),
        BatchNorm2d(channels),
        ReLU(),
        Conv2d(channels, channels, 3, rng=rng),
        BatchNorm2d(channels),
    )
    return Sequential(Residual(body), ReLU())


def build_mini_resnet(
    in_channels: int = 1, num_classes: int = 4, width: int = 16, seed: int = 0
) -> Module:
    """Residual CNN (ResNet family at small scale): stem + 2 blocks + GAP."""
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(in_channels, width, 3, rng=rng),
        BatchNorm2d(width),
        ReLU(),
        _res_block(width, rng),
        MaxPool2d(2),
        _res_block(width, rng),
        GlobalAvgPool(),
        Linear(width, num_classes, rng=rng),
    )


def model_zoo(
    in_channels: int = 1, num_classes: int = 4, size: int = 16, seed: int = 0
) -> dict[str, Module]:
    """The Fig. 4 model suite, keyed by family name."""
    return {
        "lenet": build_lenet(in_channels, num_classes, size, seed),
        "vgg_small": build_vgg_small(in_channels, num_classes, size, seed),
        "mini_resnet": build_mini_resnet(in_channels, num_classes, seed=seed),
    }
