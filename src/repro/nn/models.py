"""Model zoo for the accuracy study (Fig. 4's CNN suite, scaled down).

The paper evaluates "large CNNs" (ResNet-50-class) trained on ImageNet.
Offline we use the same architectural families at dataset-appropriate
scale: a LeNet-style CNN, a VGG-style CNN (the paper's own architecture
workload), a residual network, and an MLP.  The Fig. 4 benchmark trains
each in float32 and re-evaluates it under bfloat16 PC3_tr arithmetic.
"""

from __future__ import annotations

import numpy as np

from .layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    MultiHeadAttention,
    ReLU,
    Residual,
    Sequential,
)

__all__ = [
    "build_mlp",
    "build_lenet",
    "build_vgg_small",
    "build_mini_resnet",
    "build_mobilenet_edge",
    "build_transformer_encoder",
    "model_zoo",
    "model_input_shape",
]


def build_mlp(
    in_features: int = 32, hidden: int = 64, num_classes: int = 4, seed: int = 0
) -> Module:
    """Two-hidden-layer MLP."""
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(in_features, hidden, rng=rng),
        ReLU(),
        Linear(hidden, hidden, rng=rng),
        ReLU(),
        Linear(hidden, num_classes, rng=rng),
    )


def build_lenet(
    in_channels: int = 1, num_classes: int = 4, size: int = 16, seed: int = 0
) -> Module:
    """LeNet-style CNN: two conv+pool stages and two FC layers."""
    rng = np.random.default_rng(seed)
    feat = size // 4
    return Sequential(
        Conv2d(in_channels, 8, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(8, 16, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(16 * feat * feat, 32, rng=rng),
        ReLU(),
        Linear(32, num_classes, rng=rng),
    )


def build_vgg_small(
    in_channels: int = 1, num_classes: int = 4, size: int = 16, seed: int = 0
) -> Module:
    """VGG-style CNN: stacked 3x3 convs with BN, doubling widths."""
    rng = np.random.default_rng(seed)
    feat = size // 8
    return Sequential(
        Conv2d(in_channels, 16, 3, rng=rng),
        BatchNorm2d(16),
        ReLU(),
        MaxPool2d(2),
        Conv2d(16, 32, 3, rng=rng),
        BatchNorm2d(32),
        ReLU(),
        MaxPool2d(2),
        Conv2d(32, 64, 3, rng=rng),
        BatchNorm2d(64),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(64 * feat * feat, num_classes, rng=rng),
    )


def _res_block(channels: int, rng: np.random.Generator) -> Module:
    body = Sequential(
        Conv2d(channels, channels, 3, rng=rng),
        BatchNorm2d(channels),
        ReLU(),
        Conv2d(channels, channels, 3, rng=rng),
        BatchNorm2d(channels),
    )
    return Sequential(Residual(body), ReLU())


def build_mini_resnet(
    in_channels: int = 1, num_classes: int = 4, width: int = 16, seed: int = 0
) -> Module:
    """Residual CNN (ResNet family at small scale): stem + 2 blocks + GAP."""
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(in_channels, width, 3, rng=rng),
        BatchNorm2d(width),
        ReLU(),
        _res_block(width, rng),
        MaxPool2d(2),
        _res_block(width, rng),
        GlobalAvgPool(),
        Linear(width, num_classes, rng=rng),
    )


def build_mobilenet_edge(
    in_channels: int = 3, num_classes: int = 4, size: int = 96, seed: int = 0
) -> Module:
    """MobileNet-style edge CNN: strided stem + 3 depthwise-separable blocks.

    Layer labels (``stem``/``dw*``/``pw*``) match the hand-registered
    co-sim workload ``mobilenet_edge_layers`` in
    :mod:`repro.arch.workloads`; the sync test derives the shapes from
    this module's plan trace and checks them against that registry.
    Fully convolutional until the GAP head, so it runs at any input
    size (the registered shapes assume ``size=96``).
    """
    rng = np.random.default_rng(seed)
    return Sequential(
        Conv2d(in_channels, 32, 3, stride=2, padding=1, label="stem", rng=rng),
        ReLU(),
        Conv2d(32, 32, 3, padding=1, groups=32, label="dw1", rng=rng),
        ReLU(),
        Conv2d(32, 64, 1, padding=0, label="pw1", rng=rng),
        ReLU(),
        Conv2d(64, 64, 3, stride=2, padding=1, groups=64, label="dw2", rng=rng),
        ReLU(),
        Conv2d(64, 128, 1, padding=0, label="pw2", rng=rng),
        ReLU(),
        Conv2d(128, 128, 3, padding=1, groups=128, label="dw3", rng=rng),
        ReLU(),
        Conv2d(128, 128, 1, padding=0, label="pw3", rng=rng),
        ReLU(),
        GlobalAvgPool(),
        Linear(128, num_classes, rng=rng),
    )


def build_transformer_encoder(
    d_model: int = 256, heads: int = 8, mlp_ratio: int = 4, seed: int = 0
) -> Module:
    """One pre-classifier transformer encoder block on ``(N, T, D)``.

    Post-norm residual layout: attention + LayerNorm, then a GELU-free
    MLP (ReLU, matching the rest of the suite) + LayerNorm.  The four
    projection labels (``qkv_proj``/``attn_out``/``mlp_up``/
    ``mlp_down``) match the co-sim workload ``transformer_block_layers``
    registry.  Sequence length is free at run time; the registered
    shapes assume ``T=64``.
    """
    rng = np.random.default_rng(seed)
    return Sequential(
        Residual(MultiHeadAttention(d_model, heads, rng=rng)),
        LayerNorm(d_model),
        Residual(
            Sequential(
                Linear(d_model, mlp_ratio * d_model, label="mlp_up", rng=rng),
                ReLU(),
                Linear(mlp_ratio * d_model, d_model, label="mlp_down", rng=rng),
            )
        ),
        LayerNorm(d_model),
    )


def model_zoo(
    in_channels: int = 1, num_classes: int = 4, size: int = 16, seed: int = 0
) -> dict[str, Module]:
    """The model suite, keyed by family name.

    The first three are the Fig. 4 accuracy-study CNNs (trained on the
    16x16 shapes dataset); ``mobilenet_edge`` and ``transformer_encoder``
    are the co-sim scenario workloads, served inference-only.
    """
    return {
        "lenet": build_lenet(in_channels, num_classes, size, seed),
        "vgg_small": build_vgg_small(in_channels, num_classes, size, seed),
        "mini_resnet": build_mini_resnet(in_channels, num_classes, seed=seed),
        "mobilenet_edge": build_mobilenet_edge(num_classes=num_classes, seed=seed),
        "transformer_encoder": build_transformer_encoder(seed=seed),
    }


def model_input_shape(name: str) -> tuple[int, ...]:
    """Canonical per-sample input shape for each zoo model."""
    shapes = {
        "lenet": (1, 16, 16),
        "vgg_small": (1, 16, 16),
        "mini_resnet": (1, 16, 16),
        "mobilenet_edge": (3, 96, 96),
        "transformer_encoder": (64, 256),
    }
    try:
        return shapes[name]
    except KeyError:
        raise KeyError(f"unknown zoo model {name!r}; have {sorted(shapes)}") from None
