"""Training/evaluation loops and the Fig. 4 accuracy-comparison helper."""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.gemm import MatmulBackend
from . import functional as F
from .backend import use_backend
from .data import Dataset, iterate_batches
from .layers import Module
from .optim import SGD

__all__ = ["TrainResult", "train", "evaluate", "accuracy_comparison"]


@dataclasses.dataclass
class TrainResult:
    """Loss/accuracy trajectory of one training run."""

    losses: list[float]
    train_accuracy: float
    test_accuracy: float


def evaluate(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int = 64,
    backend: MatmulBackend | None = None,
) -> float:
    """Top-1 accuracy of a model on a labelled set, under a backend."""
    model.eval()
    correct = 0

    def run() -> None:
        nonlocal correct
        for bx, by in iterate_batches(x, y, batch_size):
            logits = model(bx)
            correct += int((logits.argmax(axis=1) == by).sum())

    if backend is not None:
        with use_backend(backend):
            run()
    else:
        run()
    return correct / len(y)


def train(
    model: Module,
    data: Dataset,
    epochs: int = 8,
    batch_size: int = 32,
    lr: float = 0.05,
    momentum: float = 0.9,
    weight_decay: float = 1e-4,
    seed: int = 0,
    backend: MatmulBackend | None = None,
) -> TrainResult:
    """SGD training with cross-entropy loss.

    When ``backend`` is given, *both* forward and backward GEMMs run on
    it — this is the paper's training claim (DAISM accelerates "DNN
    Training and Inference"): gradients flow through the same approximate
    in-SRAM products.
    """
    rng = np.random.default_rng(seed)
    optimiser = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    losses: list[float] = []

    def run() -> None:
        for _epoch in range(epochs):
            model.train()
            for bx, by in iterate_batches(data.train_x, data.train_y, batch_size, rng):
                optimiser.zero_grad()
                logits = model(bx)
                losses.append(F.cross_entropy(logits, by))
                model.backward(F.cross_entropy_grad(logits, by))
                optimiser.step()

    if backend is not None:
        with use_backend(backend):
            run()
    else:
        run()

    return TrainResult(
        losses=losses,
        train_accuracy=evaluate(model, data.train_x, data.train_y, backend=backend),
        test_accuracy=evaluate(model, data.test_x, data.test_y, backend=backend),
    )


def accuracy_comparison(
    model: Module,
    data: Dataset,
    backends: dict[str, MatmulBackend],
    batch_size: int = 64,
) -> dict[str, float]:
    """Evaluate one trained model under several arithmetic backends.

    This is the Fig. 4 primitive: the float32-trained model is re-run
    with bfloat16 PC3_tr (and any other configurations) and the top-1
    accuracies are compared.
    """
    return {
        name: evaluate(model, data.test_x, data.test_y, batch_size, backend)
        for name, backend in backends.items()
    }
