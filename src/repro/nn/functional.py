"""Functional building blocks: im2col convolution, pooling, losses.

All dense products route through a :class:`~repro.core.gemm.MatmulBackend`
so the whole network can run on exact float32 or on the DAISM
approximate datapath (Sec. V-A of the paper evaluates full CNNs that
way).
"""

from __future__ import annotations

import numpy as np

from ..core.gemm import MatmulBackend
from .backend import default_backend

__all__ = [
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "grouped_conv2d_forward",
    "grouped_conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool_global_forward",
    "avgpool_global_backward",
    "layernorm_forward",
    "layernorm_backward",
    "softmax",
    "softmax_backward",
    "split_heads",
    "merge_heads",
    "attention_core",
    "attention_core_backward",
    "cross_entropy",
    "cross_entropy_grad",
]


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(f"kernel {kernel} does not fit input of size {size}")
    return out


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N * OH * OW, C * K * K)`` patches.

    This is the kernel flattening of Fig. 3: convolution becomes a GEMM
    between patch rows and flattened kernels.
    """
    n, c, h, w = x.shape
    oh = _out_size(h, kernel, stride, padding)
    ow = _out_size(w, kernel, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    # Gather with stride tricks: windows (N, C, K, K, OH, OW).
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, oh, ow),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    cols = windows.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kernel * kernel)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patch gradients back to the input tensor (im2col adjoint)."""
    n, c, h, w = x_shape
    oh = _out_size(h, kernel, stride, padding)
    ow = _out_size(w, kernel, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=np.float32)
    cols6 = cols.reshape(n, oh, ow, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    for kh in range(kernel):
        h_slice = slice(kh, kh + stride * oh, stride)
        for kw in range(kernel):
            w_slice = slice(kw, kw + stride * ow, stride)
            padded[:, :, h_slice, w_slice] += cols6[:, :, kh, kw]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    backend: MatmulBackend | None = None,
    prepared_weight=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Convolution via one batched im2col GEMM.  Returns ``(output, cols_cache)``.

    ``weight`` has shape ``(F, C, K, K)``.  The whole batch runs as a
    single ``(N, OH*OW, C*K*K) @ (C*K*K, F)`` GEMM on the backend.
    ``prepared_weight``, when given, is a backend-prepared form of the
    flattened-transposed kernel matrix (``backend.prepare`` of the
    ``(C*K*K, F)`` matrix) — layers pass their cached packed weights here
    so inference performs zero per-call weight packing.
    """
    backend = backend or default_backend()
    n, _c, h, w = x.shape
    f, _, kernel, _ = weight.shape
    oh = _out_size(h, kernel, stride, padding)
    ow = _out_size(w, kernel, stride, padding)

    cols = im2col(x, kernel, stride, padding)
    wmat = prepared_weight if prepared_weight is not None else weight.reshape(f, -1).T
    out = backend.matmul(cols.reshape(n, oh * ow, -1), wmat)
    if bias is not None:
        out = out + bias[None, None, :]
    out = out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)
    return np.ascontiguousarray(out, dtype=np.float32), cols


def conv2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    cols: np.ndarray,
    weight: np.ndarray,
    stride: int,
    padding: int,
    backend: MatmulBackend | None = None,
    prepared_weight=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of the im2col convolution: ``(dx, dweight, dbias)``.

    The two backward GEMMs also run on the configured backend — on the
    accelerator, training's backward passes are the same in-SRAM GEMMs
    (the paper targets "DNN Training and Inference").  ``prepared_weight``
    is an optional backend-prepared form of the flattened ``(F, C*K*K)``
    kernel matrix used by the ``dcols`` GEMM.
    """
    backend = backend or default_backend()
    f, c, kernel, _ = weight.shape
    n = x_shape[0]
    grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, f)  # (N*OH*OW, F)

    dbias = grad_mat.sum(axis=0)
    dweight = backend.matmul(grad_mat.T, cols).reshape(f, c, kernel, kernel)
    wrows = prepared_weight if prepared_weight is not None else weight.reshape(f, -1)
    dcols = backend.matmul(grad_mat, wrows)
    dx = col2im(dcols, x_shape, kernel, stride, padding)
    return dx.astype(np.float32), dweight.astype(np.float32), dbias.astype(np.float32)


def grouped_conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    groups: int,
    backend: MatmulBackend | None = None,
    prepared_weights=None,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Grouped/depthwise convolution: one batched GEMM per channel group.

    ``weight`` has shape ``(F, C // groups, K, K)``: input channel group
    ``g`` only meets filters ``[g*F/G, (g+1)*F/G)``.  Each group runs the
    same im2col GEMM as :func:`conv2d_forward` on its channel slice, and
    the per-group outputs are concatenated along the filter axis —
    exactly the block-diagonal structure of the dense kernel matrix, so
    ``groups=1`` degenerates to the dense path.  ``prepared_weights`` is
    an optional sequence of backend-prepared per-group ``(C/G*K*K, F/G)``
    matrices (the layers cache these).  Returns ``(output, cols_cache)``
    with one patch matrix per group for the backward pass.
    """
    backend = backend or default_backend()
    n, c, h, w = x.shape
    f, cg, kernel, _ = weight.shape
    if c != cg * groups or f % groups:
        raise ValueError(
            f"grouped conv shape mismatch: input {c} channels, weight "
            f"{cg} channels/group x {groups} groups, {f} filters"
        )
    fg = f // groups
    oh = _out_size(h, kernel, stride, padding)
    ow = _out_size(w, kernel, stride, padding)

    cols_cache: list[np.ndarray] = []
    outs: list[np.ndarray] = []
    for g in range(groups):
        cols = im2col(x[:, g * cg : (g + 1) * cg], kernel, stride, padding)
        if prepared_weights is not None:
            wmat = prepared_weights[g]
        else:
            wmat = weight[g * fg : (g + 1) * fg].reshape(fg, -1).T
        outs.append(backend.matmul(cols.reshape(n, oh * ow, -1), wmat))
        cols_cache.append(cols)
    out = np.concatenate(outs, axis=2)
    if bias is not None:
        out = out + bias[None, None, :]
    out = out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)
    return np.ascontiguousarray(out, dtype=np.float32), cols_cache


def grouped_conv2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    cols_cache: list[np.ndarray],
    weight: np.ndarray,
    stride: int,
    padding: int,
    groups: int,
    backend: MatmulBackend | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of the grouped convolution: ``(dx, dweight, dbias)``.

    Each group's backward is the dense :func:`conv2d_backward` pair of
    GEMMs on that group's slice of the gradient and patch cache.
    """
    backend = backend or default_backend()
    f, cg, kernel, _ = weight.shape
    n, c, h, w = x_shape
    fg = f // groups
    grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, f)  # (N*OH*OW, F)

    dbias = grad_mat.sum(axis=0)
    dweight = np.empty_like(weight)
    dx_groups: list[np.ndarray] = []
    group_shape = (n, cg, h, w)
    for g in range(groups):
        grad_g = np.ascontiguousarray(grad_mat[:, g * fg : (g + 1) * fg])
        cols = cols_cache[g]
        dweight[g * fg : (g + 1) * fg] = backend.matmul(grad_g.T, cols).reshape(
            fg, cg, kernel, kernel
        )
        wrows = weight[g * fg : (g + 1) * fg].reshape(fg, -1)
        dcols = backend.matmul(grad_g, wrows)
        dx_groups.append(col2im(dcols, group_shape, kernel, stride, padding))
    dx = np.concatenate(dx_groups, axis=1)
    return dx.astype(np.float32), dweight.astype(np.float32), dbias.astype(np.float32)


def maxpool2d_forward(x: np.ndarray, size: int) -> tuple[np.ndarray, np.ndarray]:
    """Non-overlapping max pooling.  Returns ``(output, argmax_cache)``."""
    n, c, h, w = x.shape
    if h % size or w % size:
        raise ValueError(f"spatial dims {h}x{w} not divisible by pool size {size}")
    oh, ow = h // size, w // size
    windows = x.reshape(n, c, oh, size, ow, size).transpose(0, 1, 2, 4, 3, 5)
    flat = windows.reshape(n, c, oh, ow, size * size)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    return out.astype(np.float32), arg


def maxpool2d_backward(
    grad_out: np.ndarray, arg: np.ndarray, x_shape: tuple[int, int, int, int], size: int
) -> np.ndarray:
    """Route gradients to the argmax positions."""
    n, c, h, w = x_shape
    oh, ow = h // size, w // size
    flat = np.zeros((n, c, oh, ow, size * size), dtype=np.float32)
    np.put_along_axis(flat, arg[..., None], grad_out[..., None], axis=-1)
    windows = flat.reshape(n, c, oh, ow, size, size).transpose(0, 1, 2, 4, 3, 5)
    return windows.reshape(n, c, h, w)


def avgpool_global_forward(x: np.ndarray) -> np.ndarray:
    """Global average pooling ``(N, C, H, W) -> (N, C)``."""
    return x.mean(axis=(2, 3), dtype=np.float32)


def avgpool_global_backward(grad_out: np.ndarray, x_shape: tuple[int, int, int, int]) -> np.ndarray:
    """Spread gradients uniformly over the pooled window."""
    n, c, h, w = x_shape
    scale = np.float32(1.0 / (h * w))
    return np.broadcast_to(grad_out[:, :, None, None] * scale, x_shape).astype(np.float32)


def layernorm_forward(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float
) -> tuple[np.ndarray, tuple]:
    """Layer normalisation over the last axis.  Returns ``(out, cache)``.

    Normalises every feature vector to zero mean / unit variance and
    applies the affine ``gamma * x_hat + beta``.  Both the eager layer
    and the compiled plan op call this one function, so the two regimes
    are byte-identical by construction.
    """
    mean = x.mean(axis=-1, keepdims=True, dtype=np.float32)
    var = x.var(axis=-1, keepdims=True, dtype=np.float32)
    inv_std = (1.0 / np.sqrt(var + np.float32(eps))).astype(np.float32)
    x_hat = ((x - mean) * inv_std).astype(np.float32)
    out = (gamma * x_hat + beta).astype(np.float32)
    return out, (x_hat, inv_std)


def layernorm_backward(
    grad: np.ndarray, gamma: np.ndarray, cache: tuple
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of :func:`layernorm_forward`: ``(dx, dgamma, dbeta)``."""
    x_hat, inv_std = cache
    d = x_hat.shape[-1]
    axes = tuple(range(x_hat.ndim - 1))
    dgamma = (grad * x_hat).sum(axis=axes)
    dbeta = grad.sum(axis=axes)
    g = grad * gamma
    sum_g = g.sum(axis=-1, keepdims=True)
    sum_gx = (g * x_hat).sum(axis=-1, keepdims=True)
    dx = (inv_std / d) * (d * g - sum_g - x_hat * sum_gx)
    return dx.astype(np.float32), dgamma.astype(np.float32), dbeta.astype(np.float32)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Softmax over the **last** axis (numerically stabilised).

    Max-subtraction keeps ``exp`` in range even at the top of the
    bfloat16 dynamic range (~3e38), where the naive form overflows to
    ``inf/inf``.  Works on any rank: classifier logits ``(N, C)`` and
    batched attention scores ``(B, H, T, T)`` alike normalise their
    trailing axis.
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_backward(grad: np.ndarray, probs: np.ndarray) -> np.ndarray:
    """Gradient through :func:`softmax` given its output ``probs``."""
    inner = (grad * probs).sum(axis=-1, keepdims=True)
    return (probs * (grad - inner)).astype(np.float32)


def split_heads(x: np.ndarray, heads: int) -> np.ndarray:
    """``(N, T, D) -> (N, H, T, D/H)`` — per-head view of a projection."""
    n, t, d = x.shape
    if d % heads:
        raise ValueError(f"model dim {d} not divisible by {heads} heads")
    return np.ascontiguousarray(x.reshape(n, t, heads, d // heads).transpose(0, 2, 1, 3))


def merge_heads(x: np.ndarray) -> np.ndarray:
    """``(N, H, T, D/H) -> (N, T, D)`` — inverse of :func:`split_heads`."""
    n, h, t, dh = x.shape
    return np.ascontiguousarray(x.transpose(0, 2, 1, 3).reshape(n, t, h * dh))


def attention_core(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    backend: MatmulBackend | None = None,
    scale: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Scaled dot-product attention with both products on the backend.

    ``q``/``k``/``v`` are ``(N, H, T, Dh)``.  Unlike the weight GEMMs,
    ``Q K^T`` and ``A V`` multiply two *activations* — there is no static
    operand to pre-pack, so each (sample, head) pair runs as its own
    2-D ``backend.matmul`` (on the accelerator these are the products
    DAISM must stream both operands for).  Per-pair products keep
    samples independent, which is what makes attention shard-safe: the
    GEMM shapes (and hence the packed kernels' K-chunk choices) depend
    only on ``(T, Dh)``, never on the batch size.

    Returns ``(context, probs)`` with ``context`` ``(N, H, T, Dh)`` and
    the post-softmax attention weights ``probs`` ``(N, H, T, T)``.
    Shared by the eager layer and the compiled plan op, so the two
    regimes are byte-identical by construction.
    """
    backend = backend or default_backend()
    n, h, t, dh = q.shape
    if scale is None:
        scale = 1.0 / np.sqrt(dh)
    scale = np.float32(scale)
    probs = np.empty((n, h, t, t), dtype=np.float32)
    context = np.empty((n, h, t, dh), dtype=np.float32)
    for i in range(n):
        for j in range(h):
            kt = np.ascontiguousarray(k[i, j].T)
            scores = (backend.matmul(q[i, j], kt) * scale).astype(np.float32)
            p = softmax(scores).astype(np.float32)
            probs[i, j] = p
            context[i, j] = backend.matmul(p, v[i, j])
    return context, probs


def attention_core_backward(
    grad: np.ndarray,
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    probs: np.ndarray,
    backend: MatmulBackend | None = None,
    scale: float | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of :func:`attention_core`: ``(dq, dk, dv)``."""
    backend = backend or default_backend()
    n, h, t, dh = q.shape
    if scale is None:
        scale = 1.0 / np.sqrt(dh)
    scale = np.float32(scale)
    dq = np.empty_like(q)
    dk = np.empty_like(k)
    dv = np.empty_like(v)
    for i in range(n):
        for j in range(h):
            p = probs[i, j]
            g = grad[i, j]
            dv[i, j] = backend.matmul(np.ascontiguousarray(p.T), g)
            dp = backend.matmul(g, np.ascontiguousarray(v[i, j].T))
            ds = softmax_backward(dp, p) * scale
            dq[i, j] = backend.matmul(ds, k[i, j])
            dk[i, j] = backend.matmul(np.ascontiguousarray(ds.T), q[i, j])
    return dq, dk, dv


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer labels."""
    probs = softmax(logits)
    n = logits.shape[0]
    picked = probs[np.arange(n), labels]
    return float(-np.log(np.clip(picked, 1e-12, None)).mean())


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of mean cross-entropy w.r.t. the logits."""
    n = logits.shape[0]
    grad = softmax(logits)
    grad[np.arange(n), labels] -= 1.0
    return (grad / n).astype(np.float32)
