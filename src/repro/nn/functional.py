"""Functional building blocks: im2col convolution, pooling, losses.

All dense products route through a :class:`~repro.core.gemm.MatmulBackend`
so the whole network can run on exact float32 or on the DAISM
approximate datapath (Sec. V-A of the paper evaluates full CNNs that
way).
"""

from __future__ import annotations

import numpy as np

from ..core.gemm import MatmulBackend
from .backend import default_backend

__all__ = [
    "im2col",
    "col2im",
    "conv2d_forward",
    "conv2d_backward",
    "maxpool2d_forward",
    "maxpool2d_backward",
    "avgpool_global_forward",
    "avgpool_global_backward",
    "softmax",
    "cross_entropy",
    "cross_entropy_grad",
]


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError(f"kernel {kernel} does not fit input of size {size}")
    return out


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N * OH * OW, C * K * K)`` patches.

    This is the kernel flattening of Fig. 3: convolution becomes a GEMM
    between patch rows and flattened kernels.
    """
    n, c, h, w = x.shape
    oh = _out_size(h, kernel, stride, padding)
    ow = _out_size(w, kernel, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    # Gather with stride tricks: windows (N, C, K, K, OH, OW).
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, oh, ow),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    cols = windows.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kernel * kernel)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold patch gradients back to the input tensor (im2col adjoint)."""
    n, c, h, w = x_shape
    oh = _out_size(h, kernel, stride, padding)
    ow = _out_size(w, kernel, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=np.float32)
    cols6 = cols.reshape(n, oh, ow, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    for kh in range(kernel):
        h_slice = slice(kh, kh + stride * oh, stride)
        for kw in range(kernel):
            w_slice = slice(kw, kw + stride * ow, stride)
            padded[:, :, h_slice, w_slice] += cols6[:, :, kh, kw]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
    backend: MatmulBackend | None = None,
    prepared_weight=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Convolution via one batched im2col GEMM.  Returns ``(output, cols_cache)``.

    ``weight`` has shape ``(F, C, K, K)``.  The whole batch runs as a
    single ``(N, OH*OW, C*K*K) @ (C*K*K, F)`` GEMM on the backend.
    ``prepared_weight``, when given, is a backend-prepared form of the
    flattened-transposed kernel matrix (``backend.prepare`` of the
    ``(C*K*K, F)`` matrix) — layers pass their cached packed weights here
    so inference performs zero per-call weight packing.
    """
    backend = backend or default_backend()
    n, _c, h, w = x.shape
    f, _, kernel, _ = weight.shape
    oh = _out_size(h, kernel, stride, padding)
    ow = _out_size(w, kernel, stride, padding)

    cols = im2col(x, kernel, stride, padding)
    wmat = prepared_weight if prepared_weight is not None else weight.reshape(f, -1).T
    out = backend.matmul(cols.reshape(n, oh * ow, -1), wmat)
    if bias is not None:
        out = out + bias[None, None, :]
    out = out.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)
    return np.ascontiguousarray(out, dtype=np.float32), cols


def conv2d_backward(
    grad_out: np.ndarray,
    x_shape: tuple[int, int, int, int],
    cols: np.ndarray,
    weight: np.ndarray,
    stride: int,
    padding: int,
    backend: MatmulBackend | None = None,
    prepared_weight=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of the im2col convolution: ``(dx, dweight, dbias)``.

    The two backward GEMMs also run on the configured backend — on the
    accelerator, training's backward passes are the same in-SRAM GEMMs
    (the paper targets "DNN Training and Inference").  ``prepared_weight``
    is an optional backend-prepared form of the flattened ``(F, C*K*K)``
    kernel matrix used by the ``dcols`` GEMM.
    """
    backend = backend or default_backend()
    f, c, kernel, _ = weight.shape
    n = x_shape[0]
    grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, f)  # (N*OH*OW, F)

    dbias = grad_mat.sum(axis=0)
    dweight = backend.matmul(grad_mat.T, cols).reshape(f, c, kernel, kernel)
    wrows = prepared_weight if prepared_weight is not None else weight.reshape(f, -1)
    dcols = backend.matmul(grad_mat, wrows)
    dx = col2im(dcols, x_shape, kernel, stride, padding)
    return dx.astype(np.float32), dweight.astype(np.float32), dbias.astype(np.float32)


def maxpool2d_forward(x: np.ndarray, size: int) -> tuple[np.ndarray, np.ndarray]:
    """Non-overlapping max pooling.  Returns ``(output, argmax_cache)``."""
    n, c, h, w = x.shape
    if h % size or w % size:
        raise ValueError(f"spatial dims {h}x{w} not divisible by pool size {size}")
    oh, ow = h // size, w // size
    windows = x.reshape(n, c, oh, size, ow, size).transpose(0, 1, 2, 4, 3, 5)
    flat = windows.reshape(n, c, oh, ow, size * size)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    return out.astype(np.float32), arg


def maxpool2d_backward(
    grad_out: np.ndarray, arg: np.ndarray, x_shape: tuple[int, int, int, int], size: int
) -> np.ndarray:
    """Route gradients to the argmax positions."""
    n, c, h, w = x_shape
    oh, ow = h // size, w // size
    flat = np.zeros((n, c, oh, ow, size * size), dtype=np.float32)
    np.put_along_axis(flat, arg[..., None], grad_out[..., None], axis=-1)
    windows = flat.reshape(n, c, oh, ow, size, size).transpose(0, 1, 2, 4, 3, 5)
    return windows.reshape(n, c, h, w)


def avgpool_global_forward(x: np.ndarray) -> np.ndarray:
    """Global average pooling ``(N, C, H, W) -> (N, C)``."""
    return x.mean(axis=(2, 3), dtype=np.float32)


def avgpool_global_backward(grad_out: np.ndarray, x_shape: tuple[int, int, int, int]) -> np.ndarray:
    """Spread gradients uniformly over the pooled window."""
    n, c, h, w = x_shape
    scale = np.float32(1.0 / (h * w))
    return np.broadcast_to(grad_out[:, :, None, None] * scale, x_shape).astype(np.float32)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax (numerically stabilised)."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy of integer labels."""
    probs = softmax(logits)
    n = logits.shape[0]
    picked = probs[np.arange(n), labels]
    return float(-np.log(np.clip(picked, 1e-12, None)).mean())


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of mean cross-entropy w.r.t. the logits."""
    n = logits.shape[0]
    grad = softmax(logits)
    grad[np.arange(n), labels] -= 1.0
    return (grad / n).astype(np.float32)
