"""Synthetic image datasets (the offline stand-in for ImageNet).

The paper's accuracy study (Fig. 4) runs ImageNet-trained CNNs; with no
network access we train small CNNs on procedurally generated data whose
decision structure still requires real convolutional features:

* :func:`shapes_dataset` — grayscale or RGB images of randomly placed,
  sized and rotated geometric shapes (disk, square, cross, ring) with
  additive noise; classifying them needs edge/curvature features, so the
  approximate-arithmetic sensitivity of a trained CNN is exercised the
  same way a natural-image model's is.
* :func:`blobs_dataset` — Gaussian-blob vectors for MLP tests.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

import numpy as np

__all__ = ["Dataset", "shapes_dataset", "blobs_dataset", "iterate_batches", "SHAPE_CLASSES"]

SHAPE_CLASSES = ("disk", "square", "cross", "ring")


@dataclasses.dataclass
class Dataset:
    """A labelled split pair."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.train_y.max()) + 1


def _render_shape(
    rng: np.random.Generator, size: int, kind: str
) -> np.ndarray:
    """One ``size x size`` grayscale image of the given shape."""
    img = np.zeros((size, size), dtype=np.float32)
    cy, cx = rng.uniform(size * 0.3, size * 0.7, size=2)
    radius = rng.uniform(size * 0.15, size * 0.3)
    yy, xx = np.mgrid[0:size, 0:size]
    dy, dx = yy - cy, xx - cx
    dist = np.sqrt(dy * dy + dx * dx)

    if kind == "disk":
        img[dist <= radius] = 1.0
    elif kind == "square":
        img[(np.abs(dy) <= radius) & (np.abs(dx) <= radius)] = 1.0
    elif kind == "cross":
        arm = max(1.0, radius * 0.35)
        img[(np.abs(dy) <= arm) & (np.abs(dx) <= radius)] = 1.0
        img[(np.abs(dx) <= arm) & (np.abs(dy) <= radius)] = 1.0
    elif kind == "ring":
        img[(dist <= radius) & (dist >= radius * 0.55)] = 1.0
    else:
        raise ValueError(f"unknown shape kind {kind!r}")
    return img


def shapes_dataset(
    n_train: int = 512,
    n_test: int = 256,
    size: int = 16,
    channels: int = 1,
    noise: float = 0.15,
    seed: int = 0,
    classes: tuple[str, ...] = SHAPE_CLASSES,
) -> Dataset:
    """Procedural shape-classification images, ``(N, C, size, size)``.

    Intensity contrast varies per sample and Gaussian noise is added, so
    the classes are not separable by mean intensity — the classifier must
    learn spatial features.
    """
    rng = np.random.default_rng(seed)

    def make(n: int) -> tuple[np.ndarray, np.ndarray]:
        x = np.zeros((n, channels, size, size), dtype=np.float32)
        y = rng.integers(0, len(classes), size=n)
        for i in range(n):
            base = _render_shape(rng, size, classes[int(y[i])])
            contrast = rng.uniform(0.6, 1.2)
            for c in range(channels):
                chan = base * contrast * rng.uniform(0.7, 1.0)
                chan = chan + rng.normal(0.0, noise, size=(size, size))
                x[i, c] = chan
        return x.astype(np.float32), y.astype(np.int64)

    train_x, train_y = make(n_train)
    test_x, test_y = make(n_test)
    return Dataset(train_x, train_y, test_x, test_y)


def blobs_dataset(
    n_train: int = 1024,
    n_test: int = 512,
    features: int = 32,
    num_classes: int = 4,
    spread: float = 1.6,
    seed: int = 0,
) -> Dataset:
    """Gaussian blobs in feature space (MLP workload)."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, features)) * spread

    def make(n: int) -> tuple[np.ndarray, np.ndarray]:
        y = rng.integers(0, num_classes, size=n)
        x = centers[y] + rng.standard_normal((n, features))
        return x.astype(np.float32), y.astype(np.int64)

    train_x, train_y = make(n_train)
    test_x, test_y = make(n_test)
    return Dataset(train_x, train_y, test_x, test_y)


def iterate_batches(
    x: np.ndarray, y: np.ndarray, batch_size: int, rng: np.random.Generator | None = None
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Shuffled mini-batches (the last ragged batch is kept)."""
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    order = np.arange(len(x))
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, len(x), batch_size):
        idx = order[start : start + batch_size]
        yield x[idx], y[idx]
