"""Pure-numpy DNN framework with swappable arithmetic backends."""

from .backend import (
    BfpMatmul,
    bfp_backend,
    daism_backend,
    default_backend,
    exact_backend,
    quantized_backend,
    set_default_backend,
    use_backend,
)
from .data import Dataset, blobs_dataset, iterate_batches, shapes_dataset
from .layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Residual,
    Sequential,
)
from .metrics import confusion_matrix, per_class_accuracy, top_k_accuracy
from .models import build_lenet, build_mini_resnet, build_mlp, build_vgg_small, model_zoo
from .optim import SGD, Adam
from .serialize import load_state_dict, load_weights, save_weights, state_dict
from .train import TrainResult, accuracy_comparison, evaluate, train

__all__ = [
    "BfpMatmul",
    "bfp_backend",
    "daism_backend",
    "default_backend",
    "exact_backend",
    "quantized_backend",
    "set_default_backend",
    "use_backend",
    "Dataset",
    "blobs_dataset",
    "iterate_batches",
    "shapes_dataset",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool",
    "Linear",
    "MaxPool2d",
    "Module",
    "Parameter",
    "ReLU",
    "Residual",
    "Sequential",
    "build_lenet",
    "build_mini_resnet",
    "build_mlp",
    "build_vgg_small",
    "model_zoo",
    "confusion_matrix",
    "per_class_accuracy",
    "top_k_accuracy",
    "SGD",
    "Adam",
    "load_state_dict",
    "load_weights",
    "save_weights",
    "state_dict",
    "TrainResult",
    "accuracy_comparison",
    "evaluate",
    "train",
]
