"""Pluggable GEMM kernels over packed operands: the arithmetic hot path.

Every approximate (and quantised) matmul in the repository bottoms out in
one of the kernels registered here.  A kernel consumes two
:class:`~repro.formats.packed.PackedTensor` operands and produces the
float32 product matrix; which kernel runs is selected by name through
:func:`select_kernel` (plumbed up through ``approx_matmul`` and the
``nn`` backend seam).

Six kernels are built in:

``float_table`` (bit-exact reference tier for table-supported widths)
    The float-domain value-table kernel.  A bfloat16-style product is
    ``(s_a 2^ea) * (s_b 2^eb) * V0[ma, mb]`` where ``V0`` is a
    ``2^bits x 2^bits`` float32 table of *normalised significand product
    values* (the one-position normalisation bump folded in, so entries
    lie in ``[1, 4)``).  Per element the kernel does one table gather
    and two multiplies by the cached per-operand scale planes — roughly
    a quarter of the passes of the ``uint32_fused`` pipeline it
    replaces, and bit-identical to it by construction: scale products
    are exact powers of two, the gathered value has at most
    ``significand_bits + 1`` significant bits, overflow to inf falls out
    of float32 naturally (bfloat16 and float32 share ``emax``), and a
    cheap subnormal-flush mask reproduces the datapath's
    flush-to-zero underflow exactly.

``float_table_native`` (bit-exact default when numba is installed)
    The same one-gather algorithm compiled to a cache-blocked,
    ``prange``-multithreaded scalar loop nest via numba
    (:mod:`repro.core.native`).  Byte-identical to ``float_table`` by
    the shared accumulation association; on boxes without numba (or
    with ``REPRO_DISABLE_NATIVE=1``) every call silently delegates to
    ``float_table``, so the tier is always safe to select.

``uint32_fused``
    The previous default: gather a fused uint32 entry (fraction bits,
    exponent bump, nonzero flag) and re-assemble float32 bit patterns
    with integer ops.  Kept as the parity reference and for the perf
    trajectory in ``BENCH_perf.json``.

``blas_factored`` (opt-in fast path)
    Factor ``V0[ma, mb] = mu[ma] * mu[mb] + E[ma, mb]`` where ``mu`` is
    the exact significand value and ``E`` the per-config error table.
    The ``mu`` outer term is exactly the quantised dense operands, so it
    routes through ``numpy.matmul`` (BLAS); the correction contracts a
    rank-``r`` SVD factorisation of ``E`` as ``r`` extra BLAS columns.
    One to two orders of magnitude faster than the gather kernels, but
    *not* bit-identical: see :class:`BlasFactoredKernel` for the
    documented parity contract.

``blas_factored_fast`` (the router's certified fast tier)
    The same kernel at a 25% truncation tolerance (rank ~1-3 instead of
    ~14 for bfloat16).  Correction cost is linear in rank, so this is
    the variant that closes the LUT-vs-BLAS gap end to end; the tier
    router only routes to it when its measured probe error certifies
    against the config's analytic worst-case bound.

``generic``
    The per-element FP pipeline for significand widths too wide to
    tabulate (e.g. float32 operands).

Chunking policy: the K-dimension split (``default_k_chunk``) is pinned
to the historical ``2^22``-element budget because float32 accumulation
order — and therefore the bit-exact output contract — depends on where
the reduction is split.  The *row*-block size is the free performance
parameter: output rows are independent, so any row blocking yields
bit-identical results, and :func:`autotune_row_budget` tunes it from a
micro-benchmark (the perf harness drives this and records the choice).

All product tables are built once per ``(bits, config)`` and cached;
:func:`table_cache_counters` exposes hit/miss counts alongside the
packing counters of :mod:`repro.formats.packed` so tests and the perf
harness can prove that hot paths never rebuild a table.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np

from ..formats.floatfmt import FloatFormat, compose
from ..formats.packed import PackedTensor
from . import integrity
from .config import MultiplierConfig
from .fp_mul import _normalise, significand_product
from .native import jit_gather, native_active, native_status
from .tables import table_supported

__all__ = [
    "GemmKernel",
    "FloatTableKernel",
    "NativeGatherKernel",
    "FusedTableKernel",
    "BlasFactoredKernel",
    "GenericKernel",
    "UnknownKernelError",
    "register_kernel",
    "get_kernel",
    "kernel_names",
    "select_kernel",
    "exact_tier_name",
    "kernel_tiers",
    "shape_class",
    "SHAPE_CLASSES",
    "value_table",
    "fused_table",
    "factored_tables",
    "table_cache_counters",
    "reset_table_cache_counters",
    "peek_table",
    "install_table",
    "default_k_chunk",
    "row_block_budget",
    "set_row_budget",
    "reset_tuned_budgets",
    "autotune_row_budget",
    "AutotuneResult",
]

# --------------------------------------------------------------------------
# Chunking policy
# --------------------------------------------------------------------------

#: K-split budget (elements of the (rows, k_chunk, n) block).  Pinned:
#: changing it would regroup the float32 accumulation and change output
#: bits, so it is part of the bit-exact kernel contract, not a perf knob.
K_CHUNK_BUDGET = 1 << 22

#: Default row-block budget (elements of the (row_block, k_chunk, n)
#: working set).  This is the tunable performance parameter — row blocks
#: are bit-neutral — and :func:`autotune_row_budget` overrides it per
#: kernel.
DEFAULT_ROW_BUDGET = 1 << 18

_ROW_BUDGETS: dict[str, int] = {}


def default_k_chunk(rows: int, n: int, budget_elems: int = K_CHUNK_BUDGET) -> int:
    """Reduction-chunk size keeping the (rows, chunk, n) block under budget.

    The formula (and its ``2^22`` budget) is frozen: the K split decides
    how the float32 accumulation is grouped, so it is part of the
    bit-exact output contract shared by ``float_table`` and
    ``uint32_fused``.  Row blocking, not K chunking, is the tuned knob.
    """
    per_k = max(1, rows * n)
    return max(1, budget_elems // per_k)


def row_block_budget(kernel_name: str) -> int:
    """The (possibly autotuned) row-block element budget for a kernel."""
    return _ROW_BUDGETS.get(kernel_name, DEFAULT_ROW_BUDGET)


def set_row_budget(kernel_name: str, budget_elems: int) -> None:
    """Override the row-block budget for ``kernel_name`` (power users)."""
    if budget_elems < 1:
        raise ValueError("row budget must be a positive element count")
    _ROW_BUDGETS[kernel_name] = int(budget_elems)


def reset_tuned_budgets() -> None:
    """Drop all autotuned/overridden row budgets (back to the default)."""
    _ROW_BUDGETS.clear()


def _row_block(kernel_name: str, k_chunk: int, k: int, n: int) -> int:
    budget = row_block_budget(kernel_name)
    return max(1, budget // max(1, min(k, k_chunk) * n))


#: Coarse problem-size classes the tier router and tune cache key on.
SHAPE_CLASSES = ("tiny", "tall_skinny", "general")

#: A GEMM at or below this many MACs counts as ``tiny``: fixed per-call
#: overhead (BLAS dispatch, correction setup) dominates there, so the
#: router keeps tiny problems on the gather tier.
TINY_SHAPE_MACS = 1 << 14


def shape_class(m: int | None, k: int, n: int) -> str:
    """Classify an ``(m, k, n)`` problem into one of :data:`SHAPE_CLASSES`.

    ``m=None`` means the batch dimension is unknown (plan compile time
    resolves kernels before any input arrives) and maps to ``general``
    — the conservative class serving batches actually land in.  The
    tall-skinny threshold reuses ``FloatTableKernel.TRANSPOSE_ASPECT``
    so the class boundary coincides with the kernel's own orientation
    switch.
    """
    if m is None:
        return "general"
    if m * k * n <= TINY_SHAPE_MACS:
        return "tiny"
    if m >= FloatTableKernel.TRANSPOSE_ASPECT * max(1, n):
        return "tall_skinny"
    return "general"


# --------------------------------------------------------------------------
# Product tables (cached, with hit/miss instrumentation)
# --------------------------------------------------------------------------

_TABLE_CACHE: dict[tuple, object] = {}
_TABLE_COUNTERS = {"hits": 0, "misses": 0}
#: Guards the table cache *and* its counters so parallel shard execution
#: (see :mod:`repro.runtime.engine`) neither double-builds a table nor
#: drops counter increments.  Reentrant because building a factored
#: table looks up the value table through the same gate.
_TABLE_LOCK = threading.RLock()


def table_cache_counters() -> dict[str, int]:
    """Snapshot of the kernel-table cache hit/miss counters.

    A *miss* means a table (fused uint32, float value, or factored
    correction) was built from scratch; a *hit* means a cached table was
    reused.  Complements :func:`repro.formats.packed.packing_counters`:
    together they prove a steady-state hot path does zero table-rebuild
    and zero re-pack work.  Reads and updates are lock-guarded, so the
    counts stay exact under multi-threaded execution.
    """
    with _TABLE_LOCK:
        return dict(_TABLE_COUNTERS)


def reset_table_cache_counters() -> None:
    """Reset the table cache hit/miss counters to zero."""
    with _TABLE_LOCK:
        _TABLE_COUNTERS["hits"] = 0
        _TABLE_COUNTERS["misses"] = 0


def _cached(key: tuple, build):
    with _TABLE_LOCK:
        hit = _TABLE_CACHE.get(key)
        if hit is not None:
            _TABLE_COUNTERS["hits"] += 1
            return hit
        # Build under the lock: concurrent first touches of a key must
        # yield one build (tables are shared read-only afterwards).
        _TABLE_COUNTERS["misses"] += 1
        value = build()
        _TABLE_CACHE[key] = value
    # Register the checksum + rebuild closure outside the table lock
    # (integrity takes its own lock first when healing; keeping the
    # integrity -> table ordering on both paths avoids a deadlock).
    integrity.register_table(key, value, build)
    return value


def peek_table(key: tuple):
    """The live cache entry for ``key`` (``None`` if absent).

    Integrity verification reads the *live* bytes through this — no
    build, no counter churn — to compare against the registered
    checksum.
    """
    with _TABLE_LOCK:
        return _TABLE_CACHE.get(key)


def install_table(key: tuple, value) -> None:
    """Replace a cache entry in place (the integrity heal path).

    Kernels look their tables up per ``run`` call, so the next GEMM on
    any thread reads the healed entry; the corrupted array is left to
    the garbage collector once in-flight calls drop it.
    """
    with _TABLE_LOCK:
        _TABLE_CACHE[key] = value


def _config_key(config: MultiplierConfig | None) -> tuple:
    if config is None:
        return (None, False)
    return (config.scheme, config.truncated)


def _normalised_products(
    bits: int, config: MultiplierConfig | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(sig, bump, nonzero) of every significand pair under ``config``.

    ``config=None`` means *exact* products (the conventional multiplier
    followed by the same one-position normalisation) — this is what the
    quantised-only backend simulates.
    """
    operands = np.arange(1 << bits, dtype=np.uint64)
    a, b = operands[:, None], operands[None, :]
    if config is None:
        product = a * b
        truncated = False
    else:
        product = significand_product(a, b, bits, config)
        truncated = config.truncated
    sig, bump = _normalise(product, np.zeros_like(product, dtype=np.int64), bits, truncated)
    return sig, bump.astype(np.int32), product != 0


def fused_table(bits: int, config: MultiplierConfig | None) -> np.ndarray:
    """Pre-computed uint32 normalise+compose entries for every pair.

    Entry layout, indexed ``[ma, mb]``: bits 0..22 hold the float32
    fraction field of the normalised product (already shifted into
    container position), bit 23 the exponent bump from normalisation
    overflow, bit 24 a nonzero flag.  A gather from this table is
    bit-identical to the per-element FP back end it replaces.
    """

    def build() -> np.ndarray:
        sig, bump, nonzero = _normalised_products(bits, config)
        mantissa_bits = bits - 1
        frac = (
            (sig & np.uint64((1 << mantissa_bits) - 1)) << np.uint64(23 - mantissa_bits)
        ).astype(np.uint32)
        entry = frac | (bump.astype(np.uint32) << np.uint32(23))
        entry |= nonzero.astype(np.uint32) << np.uint32(24)
        entry.setflags(write=False)
        return entry

    return _cached((bits, *_config_key(config), "fused"), build)


def value_table(bits: int, config: MultiplierConfig | None) -> np.ndarray:
    """The float32 value table ``V0[ma, mb]`` of normalised products.

    ``V0[ma, mb] = sig * 2^(bump - (bits-1))`` is the *value* of the
    normalised significand product with the normalisation bump folded
    in; for valid operand indices (MSB set, as ``decompose`` produces,
    or 0) entries lie in ``[1, 4)`` or are exactly 0.  The full product
    of two packed values is then
    ``scale_a * scale_b * V0[ma, mb]`` with ``scale = (-1)^s * 2^e`` —
    one gather and two multiplies.  Entries carry at most ``bits + 1``
    significant bits, so every in-range float32 product is exact.

    The table is *asymmetric*: ``ma`` indexes the stored operand, ``mb``
    the wordline-driving operand of the OR-multiplier.
    """

    def build() -> np.ndarray:
        sig, bump, _nonzero = _normalised_products(bits, config)
        table = np.ldexp(sig.astype(np.float32), bump - np.int32(bits - 1)).astype(
            np.float32
        )
        table.setflags(write=False)
        return table

    return _cached((bits, *_config_key(config), "value"), build)


def _value_table_t(bits: int, config: MultiplierConfig | None) -> np.ndarray:
    """Contiguous transpose of :func:`value_table` (``[mb, ma]`` layout).

    The transposed-orientation gather of :class:`FloatTableKernel` reads
    rows indexed by ``mb``, so a row-major transposed copy keeps the
    inner gather axis contiguous.
    """

    def build() -> np.ndarray:
        table = np.ascontiguousarray(value_table(bits, config).T)
        table.setflags(write=False)
        return table

    return _cached((bits, *_config_key(config), "value_T"), build)


def factored_tables(
    bits: int,
    config: MultiplierConfig | None,
    rank: int | None = None,
    tol: float = 0.05,
    max_rank: int = 32,
) -> tuple[np.ndarray, np.ndarray, dict]:
    """SVD factor tables of the value-table error ``E = V0 - mu mu^T``.

    ``mu[m] = m * 2^-(bits-1)`` is the exact significand value, so the
    ``mu`` outer product is the *exact* component of every product and
    ``E`` is the per-config approximation-error table.  Returns
    ``(Fa, Fb, info)`` where ``Fa``/``Fb`` are ``(rank, 2^bits)``
    float32 factor tables (singular values folded in symmetrically) with
    ``E ~= Fa^T @ Fb``, and ``info`` records the chosen rank and the
    relative Frobenius residual of the truncation.

    Parameters
    ----------
    rank:
        Explicit truncation rank; ``None`` picks the smallest rank whose
        relative Frobenius residual is below ``tol`` (capped at
        ``max_rank``).
    tol, max_rank:
        Residual target and rank cap for the automatic choice.
    """

    def build() -> tuple[np.ndarray, np.ndarray, dict]:
        v0 = value_table(bits, config).astype(np.float64)
        mu = np.arange(1 << bits, dtype=np.float64) * 2.0 ** -(bits - 1)
        error = v0 - np.outer(mu, mu)
        left, sigma, right_t = np.linalg.svd(error)
        total = float(np.sqrt((sigma**2).sum()))
        if rank is None:
            chosen = int(max_rank)
            for r in range(max_rank + 1):
                resid = float(np.sqrt((sigma[r:] ** 2).sum()))
                if total == 0.0 or resid <= tol * total:
                    chosen = r
                    break
        else:
            chosen = int(rank)
        root = np.sqrt(sigma[:chosen])
        fa = (left[:, :chosen] * root).T.astype(np.float32)
        fb = (right_t[:chosen, :].T * root).T.astype(np.float32)
        fa.setflags(write=False)
        fb.setflags(write=False)
        resid = float(np.sqrt((sigma[chosen:] ** 2).sum()))
        info = {
            "rank": chosen,
            "rel_frobenius_residual": (resid / total) if total else 0.0,
        }
        return fa, fb, info

    return _cached((bits, *_config_key(config), "factored", rank, tol, max_rank), build)


# --------------------------------------------------------------------------
# Kernels
# --------------------------------------------------------------------------


class GemmKernel:
    """Interface: a named routine computing a packed ``(M, K) @ (K, N)``.

    Kernels consume two 2-D :class:`~repro.formats.packed.PackedTensor`
    operands of the same format and return the float32 product under
    ``config`` (``None`` selects exact significand products).  They are
    registered by name via :func:`register_kernel` and selected through
    :func:`select_kernel`; ``approx_matmul`` and the backends plumb the
    name down from user code.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    #: Whether outputs are bit-identical to the scalar reference
    #: pipeline (``repro.core.mantissa`` + normalise + compose).
    bit_exact = True

    def supports(self, fmt: FloatFormat, config: MultiplierConfig | None) -> bool:
        """Whether this kernel can run operands of ``fmt`` under ``config``."""
        raise NotImplementedError

    def run(
        self,
        pa: PackedTensor,
        pb: PackedTensor,
        config: MultiplierConfig | None,
        k_chunk: int,
    ) -> np.ndarray:
        """Compute the product of 2-D packed operands."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


#: Gather via flat ``take`` (with a reusable index buffer) below this
#: many elements per (k_chunk x n) tile; plain fancy indexing above.
_TAKE_TILE_LIMIT = 1024


class FloatTableKernel(GemmKernel):
    """One-gather float-domain kernel (the bit-exact default).

    Per K-chunk and row block the kernel gathers ``V0[ma, mb]`` and
    multiplies in the two scale planes.  When operand exponents are
    comfortably inside the float32 range (the *safe* regime — always
    true for well-conditioned DNN tensors) every intermediate is exact
    and the three passes can run in-place in any order.  Otherwise it
    falls back to computing the exact power-of-two ``scale_a * scale_b``
    first (so overflow saturates exactly like ``compose``) and applies a
    subnormal-flush mask replacing the emin branch of the uint32
    pipeline; overflow to inf needs no mask because bfloat16 and float32
    share ``emax``.  Both regimes are bit-identical to ``uint32_fused``
    and to the scalar reference.
    """

    name = "float_table"
    bit_exact = True

    #: A GEMM at least this many times taller than wide runs in the
    #: transposed orientation (long SIMD axis = rows).
    TRANSPOSE_ASPECT = 16

    def supports(self, fmt: FloatFormat, config: MultiplierConfig | None) -> bool:
        """Table-supported significand widths (see ``MAX_TABLE_BITS``)."""
        return table_supported(fmt.significand_bits)

    @staticmethod
    def _range_masks(pa, pb) -> tuple[bool, bool, bool, np.uint32, np.uint32]:
        fmt = pa.fmt
        ea, eb = pa.exponent, pb.exponent
        ea_min, ea_max = int(ea.min(initial=0)), int(ea.max(initial=0))
        eb_min, eb_max = int(eb.min(initial=0)), int(eb.max(initial=0))

        # Every float32 intermediate is exact when scale products cannot
        # overflow or go subnormal; then the in-place multiply order is
        # bit-equivalent to composing the exact scale product first.
        f32_exact = ea_max <= 125 and eb_max <= 125 and ea_min + eb_min >= -126
        emin_u = 1 - fmt.bias
        emax_u = fmt.max_exponent - fmt.bias
        # Format-range masks: a product below 2^emin flushes to signed
        # zero, at or above 2^(emax+1) saturates to inf.  For 8-exponent-
        # bit formats the overflow mask is a no-op (float32 shares emax,
        # so IEEE multiply already saturates identically).
        needs_flush = ea_min + eb_min < emin_u
        needs_overflow = emax_u < 127 and ea_max + eb_max + 1 > emax_u
        flush_bits = np.uint32((emin_u + 127) << 23)
        inf_from = np.uint32((emax_u + 128) << 23)
        return f32_exact, needs_flush, needs_overflow, flush_bits, inf_from

    @staticmethod
    def _apply_masks(values, needs_flush, needs_overflow, flush_bits, inf_from):
        if not (needs_flush or needs_overflow):
            return
        bits = values.view(np.uint32)
        mag = bits & np.uint32(0x7FFF_FFFF)
        if needs_flush:
            bits[...] = np.where(mag < flush_bits, bits & np.uint32(0x8000_0000), bits)
        if needs_overflow:
            bits[...] = np.where(
                mag >= inf_from,
                (bits & np.uint32(0x8000_0000)) | np.uint32(0x7F80_0000),
                bits,
            )

    def run(self, pa, pb, config, k_chunk):
        """Gather-and-scale product, row-blocked and K-chunked.

        Tall-skinny problems (``m >= TRANSPOSE_ASPECT * n``, the shape of
        batched conv/fc layers) run in a transposed orientation whose
        inner SIMD axis is the long row dimension; the reduction order
        over K is unchanged, so both orientations produce identical
        bits.
        """
        fmt = pa.fmt
        m, k = pa.shape
        n = pb.shape[1]
        masks = self._range_masks(pa, pb)
        f32_exact = masks[0]
        if f32_exact and m >= self.TRANSPOSE_ASPECT * max(1, n):
            return self._run_transposed(pa, pb, config, k_chunk, masks)

        table = value_table(fmt.significand_bits, config)
        flat = table.reshape(-1)
        width = np.intp(table.shape[0])
        mai = pa.significand.astype(np.intp)
        mbi = pb.significand.astype(np.intp)
        alpha, beta = pa.scale(), pb.scale()

        out = np.zeros((m, n), dtype=np.float32)
        row_block = _row_block(self.name, k_chunk, k, n)
        use_take = min(k, k_chunk) * n <= _TAKE_TILE_LIMIT
        if use_take:
            idx_buf = np.empty((row_block, min(k, k_chunk), n), dtype=np.intp)
            val_buf = np.empty((row_block, min(k, k_chunk), n), dtype=np.float32)
        with np.errstate(over="ignore"):
            for r0 in range(0, m, row_block):
                r1 = min(m, r0 + row_block)
                for c0 in range(0, k, k_chunk):
                    c1 = min(k, c0 + k_chunk)
                    if use_take and (r1 - r0, c1 - c0) == idx_buf.shape[:2]:
                        idx = np.multiply(mai[r0:r1, c0:c1, None], width, out=idx_buf)
                        idx += mbi[None, c0:c1, :]
                        flat.take(idx.reshape(-1), out=val_buf.reshape(-1))
                        values = val_buf
                    else:
                        values = table[mai[r0:r1, c0:c1, None], mbi[None, c0:c1, :]]
                    if f32_exact:
                        values *= alpha[r0:r1, c0:c1, None]
                        values *= beta[None, c0:c1, :]
                    else:
                        scaled = alpha[r0:r1, c0:c1, None] * beta[None, c0:c1, :]
                        scaled *= values
                        values = scaled
                    self._apply_masks(values, *masks[1:])
                    out[r0:r1] += values.sum(axis=1, dtype=np.float32)
        return out

    def _run_transposed(self, pa, pb, config, k_chunk, masks):
        """Transposed orientation: gather ``V0^T[mb, ma]`` tiles.

        Tiles are ``(n, k_chunk, col_block)`` with the long ``m`` axis
        innermost (contiguous for gathers, scale multiplies and the
        reduction).  Summation still runs sequentially over K for every
        output element — the same association as the standard
        orientation, hence bit-identical results.  Only taken in the
        ``f32_exact`` regime, where multiply order is free.
        """
        m, k = pa.shape
        n = pb.shape[1]
        table_t = _value_table_t(pa.fmt.significand_bits, config)
        mai_t = pa.significand.T.astype(np.intp, order="C")  # (k, m) copy
        mbi_t = pb.significand.T.astype(np.intp, order="C")  # (n, k)
        alpha_t = np.ascontiguousarray(pa.scale().T)
        beta_t = np.ascontiguousarray(pb.scale().T)

        out = np.empty((m, n), dtype=np.float32)
        col_block = _row_block(self.name, k_chunk, k, n)
        with np.errstate(over="ignore"):
            for m0 in range(0, m, col_block):
                m1 = min(m, m0 + col_block)
                acc = np.zeros((n, m1 - m0), dtype=np.float32)
                for c0 in range(0, k, k_chunk):
                    c1 = min(k, c0 + k_chunk)
                    values = table_t[mbi_t[:, c0:c1, None], mai_t[None, c0:c1, m0:m1]]
                    values *= beta_t[:, c0:c1, None]
                    values *= alpha_t[None, c0:c1, m0:m1]
                    self._apply_masks(values, *masks[1:])
                    acc += values.sum(axis=1, dtype=np.float32)
                out[m0:m1] = acc.T
        return out


class NativeGatherKernel(GemmKernel):
    """Numba-compiled native tier of the one-gather value-table GEMM.

    Runs :func:`repro.core.native.gather_gemm` — the same gather + two
    scale multiplies + range masks as :class:`FloatTableKernel`, with
    the identical accumulation association (sequential within a K-chunk,
    chunk partials in order), compiled to a ``prange``-parallel scalar
    loop nest.  Byte-identical to ``float_table`` on every input.

    Delegation keeps that claim airtight rather than probabilistic.  The
    kernel falls back to ``float_table`` whenever

    * the native tier is inactive (no numba, or
      ``REPRO_DISABLE_NATIVE=1``) — graceful degradation, or
    * the numpy kernel's reduction for the shape degenerates to a tile
      whose *inner* axis is a single element (``n < 2``, or a transposed
      tall-skinny run whose column block is 1 — including a remainder
      block): there numpy's pairwise ``sum`` regroups the float32
      accumulation, and matching that regrouping scalar-by-scalar is not
      worth the complexity for shapes the gather tier has no business
      winning anyway.

    Either way callers observe one bit-exact kernel; only the speed
    differs.  :attr:`active_backend` reports which path will run.
    """

    name = "float_table_native"
    bit_exact = True

    def supports(self, fmt: FloatFormat, config: MultiplierConfig | None) -> bool:
        """Table-supported significand widths (same envelope as ``float_table``)."""
        return table_supported(fmt.significand_bits)

    @property
    def active_backend(self) -> str:
        """``"numba-njit"`` when the JIT will run, else ``"numpy-fallback"``."""
        return "numba-njit" if native_active() else "numpy-fallback"

    def _call_args(self, pa, pb, config, k_chunk) -> tuple | None:
        """Build the ``gather_gemm`` argument tuple, or ``None`` to delegate.

        ``None`` marks the degenerate shapes documented on the class —
        the ones where ``float_table``'s numpy reduction would regroup
        the accumulation.  Exposed separately so the parity suite can
        execute the uncompiled loop body on exactly the arguments the
        JIT would receive.
        """
        m, k = pa.shape
        n = pb.shape[1]
        if n < 2:
            return None
        masks = FloatTableKernel._range_masks(pa, pb)
        f32_exact, needs_flush, needs_overflow, flush_bits, inf_from = masks
        if f32_exact and m >= FloatTableKernel.TRANSPOSE_ASPECT * max(1, n):
            col_block = _row_block("float_table", k_chunk, k, n)
            if col_block < 2 or m % col_block == 1:
                return None
        table = value_table(pa.fmt.significand_bits, config)
        flush_t = np.asarray([flush_bits], dtype=np.uint32).view(np.float32)[0]
        inf_t = np.asarray([inf_from], dtype=np.uint32).view(np.float32)[0]
        ma = np.ascontiguousarray(pa.significand.astype(np.intp))
        mb_t = pb.significand.T.astype(np.intp, order="C")
        alpha = np.ascontiguousarray(pa.scale())
        beta_t = np.ascontiguousarray(pb.scale().T)
        row_block = _row_block(self.name, k_chunk, k, n)
        return (
            table,
            ma,
            alpha,
            mb_t,
            beta_t,
            int(k_chunk),
            int(row_block),
            bool(f32_exact),
            bool(needs_flush),
            bool(needs_overflow),
            flush_t,
            inf_t,
        )

    def run(self, pa, pb, config, k_chunk):
        """Compiled gather GEMM; delegates to ``float_table`` when inactive."""
        jit = jit_gather() if native_active() else None
        if jit is not None:
            args = self._call_args(pa, pb, config, k_chunk)
            if args is not None:
                return jit(*args)
        return _KERNELS["float_table"].run(pa, pb, config, k_chunk)


class FusedTableKernel(GemmKernel):
    """Fused uint32 compose kernel (the previous default, kept for parity).

    Gathers a pre-composed uint32 entry per significand pair and
    re-assembles float32 bit patterns with integer masks — bit-identical
    to ``float_table`` and to the scalar reference, a few times slower.
    """

    name = "uint32_fused"
    bit_exact = True

    def supports(self, fmt: FloatFormat, config: MultiplierConfig | None) -> bool:
        """Table-supported significand widths (see ``MAX_TABLE_BITS``)."""
        return table_supported(fmt.significand_bits)

    def run(self, pa, pb, config, k_chunk):
        """Gather-and-compose product over fused uint32 entries."""
        fmt = pa.fmt
        m, k = pa.shape
        n = pb.shape[1]
        table = fused_table(fmt.significand_bits, config)

        ma, mb = pa.significand, pb.significand
        ea, eb = pa.exponent, pb.exponent
        sa31 = pa.sign << np.uint32(31)
        sb31 = pb.sign << np.uint32(31)
        emax = fmt.max_exponent - fmt.bias
        emin = 1 - fmt.bias
        inf_bits = np.uint32(0x7F80_0000)
        nz_flag = np.uint32(1 << 24)

        out = np.zeros((m, n), dtype=np.float32)
        row_block = _row_block(self.name, k_chunk, k, n)
        for r0 in range(0, m, row_block):
            r1 = min(m, r0 + row_block)
            for c0 in range(0, k, k_chunk):
                c1 = min(k, c0 + k_chunk)
                entry = table[ma[r0:r1, c0:c1, None], mb[None, c0:c1, :]]
                exp = ea[r0:r1, c0:c1, None] + eb[None, c0:c1, :]
                exp = exp + ((entry >> np.uint32(23)) & np.uint32(1)).view(np.int32)

                nonzero = entry >= nz_flag
                overflow = exp > emax
                ok = nonzero & ~overflow & ~(exp < emin)
                # In-range biased exponents fit int32 even after <<23;
                # out-of-range lanes may wrap but are masked by `ok`.
                base = ((exp + 127) << 23).view(np.uint32)
                bits32 = np.where(ok, base | (entry & np.uint32(0x007F_FFFF)), np.uint32(0))
                bits32 = np.where(nonzero & overflow, inf_bits, bits32)
                bits32 = bits32 | (sa31[r0:r1, c0:c1, None] ^ sb31[None, c0:c1, :])
                out[r0:r1] += bits32.view(np.float32).sum(axis=1, dtype=np.float32)
        return out


class BlasFactoredKernel(GemmKernel):
    """BLAS-factored exact+correction fast path (opt-in, not bit-exact).

    Routes the exact component ``(alpha mu[ma]) @ (beta mu[mb])`` — which
    is literally the quantised dense operands — through ``numpy.matmul``
    and contracts a rank-``r`` factorisation of the per-config error
    table as ``r`` additional BLAS columns per reduction element.  Total
    cost is two BLAS GEMMs plus ``O(r (MK + KN))`` gathers, typically
    one to two orders of magnitude faster than the gather kernels.

    **Parity contract** (documented, tested): outputs are *not*
    bit-identical to the default kernel.  The deviation has three
    sources — the SVD truncation of the error table (bounded by the
    ``rel_frobenius_residual`` reported by :func:`factored_tables`,
    default tolerance 5% of the error table, i.e. well below the
    multiplier's own approximation error), BLAS accumulation order, and
    the absence of the per-product underflow-flush/overflow-saturate
    masks (operands must be well-conditioned: products near the float32
    range edges follow IEEE semantics instead of the datapath's
    flush-to-zero).  Empirically the relative output deviation on
    gaussian operands is ~0.4% for bfloat16 PC3_tr at the default rank,
    an order of magnitude below the ~7% arithmetic approximation error
    it perturbs.

    Two instances are registered: ``blas_factored`` (default 5%
    truncation tolerance, rank ~14 for bfloat16) and
    ``blas_factored_fast`` (25% tolerance, rank ~1-3) — the correction
    cost scales linearly with rank, so the fast variant trades a still-
    certified deviation (~2% on gaussian operands, an order of magnitude
    inside the analytic bound) for most of the remaining LUT-vs-BLAS
    gap.  The tier router (:mod:`repro.core.router`) only ever routes to
    either after measuring that trade on a probe GEMM.
    """

    name = "blas_factored"
    bit_exact = False

    def __init__(
        self,
        rank: int | None = None,
        tol: float = 0.05,
        max_rank: int = 32,
        name: str | None = None,
    ):
        self.rank = rank
        self.tol = tol
        self.max_rank = max_rank
        if name is not None:
            self.name = name

    def supports(self, fmt: FloatFormat, config: MultiplierConfig | None) -> bool:
        """Table-supported significand widths (see ``MAX_TABLE_BITS``)."""
        return table_supported(fmt.significand_bits)

    def correction_info(self, fmt: FloatFormat, config: MultiplierConfig | None) -> dict:
        """Rank and residual of the correction used for ``(fmt, config)``."""
        _fa, _fb, info = factored_tables(
            fmt.significand_bits, config, self.rank, self.tol, self.max_rank
        )
        return dict(info)

    def run(self, pa, pb, config, k_chunk):
        """Exact BLAS component plus low-rank error-table correction.

        The correction is contracted one rank at a time: two 1-D table
        gathers re-map each operand's significand plane, the cached
        scale planes fold in the signed exponents, and a standard BLAS
        GEMM accumulates — ``rank`` small matmuls instead of one wide
        one, which avoids materialising transposed ``(m, k, rank)``
        intermediates.
        """
        fa, fb, _info = factored_tables(
            pa.fmt.significand_bits, config, self.rank, self.tol, self.max_rank
        )
        out = pa.dense() @ pb.dense()
        mai, mbi = pa.significand, pb.significand
        alpha, beta = pa.scale(), pb.scale()
        for r in range(fa.shape[0]):
            left = fa[r].take(mai)
            left *= alpha
            right = fb[r].take(mbi)
            right *= beta
            out += left @ right
        return out


class GenericKernel(GemmKernel):
    """Per-element FP pipeline for widths too wide to tabulate.

    Runs the real ``significand_product`` + normalise + compose chain on
    every element — the only option for e.g. float32 significands, and
    the ground truth the tabulated kernels are derived from.  The
    pipeline is zero-aware: a zero operand yields a zero product, which
    normalise keeps at zero and compose turns into a signed zero.
    """

    name = "generic"
    bit_exact = True

    def supports(self, fmt: FloatFormat, config: MultiplierConfig | None) -> bool:
        """Any format (``config=None`` exact products included)."""
        return True

    def run(self, pa, pb, config, k_chunk):
        """Chunked per-element significand-product pipeline."""
        fmt = pa.fmt
        m, k = pa.shape
        n = pb.shape[1]
        bits = fmt.significand_bits

        sa, ea, ma = pa.sign, pa.exponent, pa.significand
        sb, eb, mb = pb.sign, pb.exponent, pb.significand

        out = np.zeros((m, n), dtype=np.float32)
        for c0 in range(0, k, k_chunk):
            c1 = min(k, c0 + k_chunk)
            mx = ma[:, c0:c1, None].astype(np.uint64)
            my = mb[None, c0:c1, :].astype(np.uint64)
            ex = ea[:, c0:c1, None].astype(np.int64)
            ey = eb[None, c0:c1, :].astype(np.int64)
            sx = sa[:, c0:c1, None]
            sy = sb[None, c0:c1, :]

            if config is None:
                product = mx * my
                truncated = False
            else:
                product = significand_product(mx, my, bits, config)
                truncated = config.truncated
            sig, exp = _normalise(product, ex + ey, bits, truncated)
            values = compose(sx ^ sy, exp, sig, fmt)
            out += values.sum(axis=1, dtype=np.float32)
        return out


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

_KERNELS: dict[str, GemmKernel] = {}


def register_kernel(kernel: GemmKernel) -> GemmKernel:
    """Add (or replace) a kernel in the registry; returns it."""
    _KERNELS[kernel.name] = kernel
    return kernel


class UnknownKernelError(ValueError):
    """An unregistered kernel name, carrying the valid names as data.

    ``kernel`` is the offending name and ``registered`` the sorted
    registry names at raise time — CLI layers (``serve-bench``,
    ``fleet-bench``) render both as a structured error instead of making
    users parse the message.
    """

    def __init__(self, kernel: str, registered: list[str]):
        super().__init__(f"unknown GEMM kernel {kernel!r}; registered: {registered}")
        #: The name that failed to resolve.
        self.kernel = kernel
        #: Registered kernel names at raise time.
        self.registered = registered


def get_kernel(name: str) -> GemmKernel:
    """Look up a registered kernel by name (:class:`UnknownKernelError` if absent)."""
    try:
        return _KERNELS[name]
    except KeyError as exc:
        raise UnknownKernelError(name, kernel_names()) from exc


def kernel_names() -> list[str]:
    """Sorted names of all registered kernels."""
    return sorted(_KERNELS)


def exact_tier_name(fmt: FloatFormat) -> str:
    """Name of the bit-exact default tier for ``fmt`` in this process.

    ``float_table_native`` when the native tier is active (numba
    importable and ``REPRO_DISABLE_NATIVE`` unset), ``float_table``
    otherwise; ``generic`` for significand widths too wide to tabulate.
    All three produce identical bits — the name only decides speed.
    """
    if not table_supported(fmt.significand_bits):
        return "generic"
    return "float_table_native" if native_active() else "float_table"


def kernel_tiers() -> dict:
    """Tier introspection for reports and benches.

    Returns ``{"kernels": [...], "exact_tier": <bf16 default tier>,
    "native": native_status()}`` — the ``table_cache_counters``-style
    snapshot the serving benches and the perf harness embed so recorded
    numbers always say which tier produced them.
    """
    from ..formats.floatfmt import BFLOAT16

    return {
        "kernels": kernel_names(),
        "exact_tier": exact_tier_name(BFLOAT16),
        "native": native_status(),
    }


def select_kernel(
    fmt: FloatFormat,
    config: MultiplierConfig | None = None,
    kernel: str | None = None,
) -> GemmKernel:
    """Resolve the kernel for ``(fmt, config)``.

    ``kernel=None`` picks the bit-exact default tier
    (:func:`exact_tier_name`): ``float_table_native`` when the native
    tier is active, else ``float_table`` for table-supported significand
    widths, ``generic`` otherwise.  A named kernel is validated against
    the registry and against ``kernel.supports``.  (The shape-aware
    ``"auto"`` policy lives one level up, in
    :func:`repro.core.router.route_kernel`.)
    """
    if kernel is None:
        return _KERNELS[exact_tier_name(fmt)]
    found = get_kernel(kernel)
    if not found.supports(fmt, config):
        raise ValueError(
            f"kernel {kernel!r} does not support {fmt.name} operands"
            f" (config {getattr(config, 'name', None)})"
        )
    return found


register_kernel(FloatTableKernel())
register_kernel(NativeGatherKernel())
register_kernel(FusedTableKernel())
register_kernel(BlasFactoredKernel())
register_kernel(BlasFactoredKernel(tol=0.25, name="blas_factored_fast"))
register_kernel(GenericKernel())


# --------------------------------------------------------------------------
# Bench-driven row-block autotuning
# --------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AutotuneResult:
    """Outcome of :func:`autotune_row_budget`.

    Parameters
    ----------
    kernel:
        Kernel the budget was tuned for.
    shape:
        ``(m, k, n)`` problem used for the micro-benchmark.
    timings_ms:
        Best-of-``reps`` wall time per candidate budget.
    chosen:
        The winning budget, already installed via :func:`set_row_budget`.
    source:
        ``"measured"`` when the micro-benchmark ran, ``"cache"`` when a
        :class:`~repro.core.tune_cache.TuneCache` hit skipped it.
    """

    kernel: str
    shape: tuple[int, int, int]
    timings_ms: dict[int, float]
    chosen: int
    source: str = "measured"


def autotune_row_budget(
    kernel: str = "float_table",
    shape: tuple[int, int, int] = (256, 288, 64),
    fmt: FloatFormat | None = None,
    config: MultiplierConfig | None = None,
    candidates: tuple[int, ...] = (1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20),
    reps: int = 3,
    seed: int = 0,
    cache: "TuneCache | None" = None,
) -> AutotuneResult:
    """Micro-benchmark candidate row budgets and install the fastest.

    Replaces the historical fixed working-set budget with a measured
    choice: the kernel is timed on a random ``shape`` problem for every
    candidate (best of ``reps``), the winner is installed via
    :func:`set_row_budget`, and the full timing table is returned so the
    perf harness can record it in ``BENCH_perf.json``.  Row blocking is
    bit-neutral, so tuning never changes results.

    Passing a :class:`~repro.core.tune_cache.TuneCache` makes the result
    persistent: a cached budget for ``(kernel, shape_class)`` on this
    machine fingerprint is installed without re-measuring (``source ==
    "cache"``), and a fresh measurement is written back for the next
    process.
    """
    from ..formats.floatfmt import BFLOAT16
    from ..formats.packed import pack
    from .config import PC3_TR

    fmt = fmt or BFLOAT16
    config = config if config is not None else PC3_TR
    found = get_kernel(kernel)
    m, k, n = shape
    if cache is not None:
        entry = cache.get(kernel, shape_class(m, k, n))
        if entry is not None and entry.get("budget"):
            chosen = int(entry["budget"])
            set_row_budget(kernel, chosen)
            timings = {
                int(b): float(t) for b, t in (entry.get("timings_ms") or {}).items()
            }
            return AutotuneResult(
                kernel=kernel,
                shape=(m, k, n),
                timings_ms=timings or {chosen: 0.0},
                chosen=chosen,
                source="cache",
            )
    rng = np.random.default_rng(seed)
    pa = pack(rng.standard_normal((m, k)).astype(np.float32), fmt)
    pb = pack(rng.standard_normal((k, n)).astype(np.float32), fmt)
    k_chunk = default_k_chunk(m, n)

    previous = _ROW_BUDGETS.get(kernel)
    timings: dict[int, float] = {}
    try:
        for budget in candidates:
            _ROW_BUDGETS[kernel] = int(budget)
            found.run(pa, pb, config, k_chunk)  # warm
            best = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                found.run(pa, pb, config, k_chunk)
                best = min(best, time.perf_counter() - t0)
            timings[int(budget)] = best * 1e3
    finally:
        if previous is None:
            _ROW_BUDGETS.pop(kernel, None)
        else:
            _ROW_BUDGETS[kernel] = previous
    chosen = min(timings, key=timings.get)
    set_row_budget(kernel, chosen)
    if cache is not None:
        cache.put(kernel, shape_class(m, k, n), budget=chosen, timings_ms=timings)
    return AutotuneResult(kernel=kernel, shape=(m, k, n), timings_ms=timings, chosen=chosen)
