"""Approximate floating point multiplication (Sec. III-C of the paper).

The DAISM datapath multiplies only the *significands* (mantissa with the
implicit leading one) through the in-SRAM approximate multiplier; the rest
of the FP pipeline is conventional:

* signs are XORed;
* exponents are added (and re-aligned after normalisation);
* multiplications by zero are bypassed;
* the significand product is normalised by at most one position (the
  product of two values in ``[1, 2)`` lies in ``[1, 4)``).

This module implements that pipeline, vectorised over numpy arrays, for
any :class:`~repro.formats.floatfmt.FloatFormat` and any
:class:`~repro.core.config.MultiplierConfig`.  Non-finite inputs (inf,
NaN) are routed through the exact float path — the accelerator targets
well-conditioned DNN tensors and the paper does not define approximate
behaviour for specials.
"""

from __future__ import annotations

import numpy as np

from ..formats.floatfmt import FloatFormat, compose, decompose, quantize
from .config import MultiplierConfig
from .tables import table_supported, tabulated_multiply
from .vectorized import approx_multiply_array

__all__ = ["approx_fp_multiply", "exact_fp_multiply", "significand_product"]


def significand_product(
    ma: np.ndarray, mb: np.ndarray, bits: int, config: MultiplierConfig
) -> np.ndarray:
    """Approximate significand product, dispatching to the LUT fast path.

    Contract matches :func:`repro.core.mantissa.approx_multiply`:
    ``2*bits``-wide result untruncated, ``bits``-wide top half truncated.
    """
    if table_supported(bits):
        return tabulated_multiply(ma, mb, bits, config)
    return approx_multiply_array(ma, mb, bits, config)


def _normalise(
    product: np.ndarray, exponent: np.ndarray, bits: int, truncated: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Normalise the significand product to ``bits`` wide, MSB set.

    For nonzero FP operands the OR-approximation is bounded below by the
    always-active ``A`` line, so the product cannot underflow past one
    normalisation position; overflow by one position (value in ``[2, 4)``)
    bumps the exponent.  A zero product (zero operand bypass) stays zero,
    so downstream :func:`~repro.formats.floatfmt.compose` emits ±0.
    """
    exponent = exponent.astype(np.int64)
    if truncated:
        # product is the n-bit top half, value in [2^(n-2), 2^n).
        overflow = product >> np.uint64(bits - 1) != 0
        sig = np.where(overflow, product, product << np.uint64(1))
        exp = np.where(overflow, exponent + 1, exponent)
    else:
        # product is 2n bits, value in [2^(2n-2), 2^(2n)).
        overflow = product >> np.uint64(2 * bits - 1) != 0
        sig = np.where(overflow, product >> np.uint64(bits), product >> np.uint64(bits - 1))
        exp = np.where(overflow, exponent + 1, exponent)
    return sig.astype(np.uint64), exp


def exact_fp_multiply(x: np.ndarray, y: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """Reference: quantise to ``fmt``, multiply exactly in float32.

    Parameters
    ----------
    x, y:
        Operand arrays (broadcastable); quantised to ``fmt`` first so
        the comparison against :func:`approx_fp_multiply` isolates the
        multiplier's error from the quantisation error.
    fmt:
        Floating point format of the simulated datapath.
    """
    xq = quantize(x, fmt)
    yq = quantize(y, fmt)
    return (xq * yq).astype(np.float32)


def approx_fp_multiply(
    x: np.ndarray,
    y: np.ndarray,
    fmt: FloatFormat,
    config: MultiplierConfig,
    quantize_inputs: bool = True,
) -> np.ndarray:
    """Elementwise approximate FP product as computed by the DAISM datapath.

    Parameters
    ----------
    x, y:
        Input arrays (broadcastable).  Interpreted as, or quantised to,
        ``fmt``.
    fmt:
        Floating point format of the operands.
    config:
        In-SRAM multiplier configuration (Table I).
    quantize_inputs:
        When true (default), inputs are first rounded to ``fmt`` with
        round-to-nearest-even, mirroring how tensors are stored on the
        accelerator.

    Returns
    -------
    float32 array of approximate products.
    """
    x = np.asarray(x, dtype=np.float32)
    y = np.asarray(y, dtype=np.float32)
    if quantize_inputs:
        x = quantize(x, fmt)
        y = quantize(y, fmt)

    shape = np.broadcast(x, y).shape
    x = np.broadcast_to(x, shape)
    y = np.broadcast_to(y, shape)

    sx, ex, mx = decompose(x, fmt)
    sy, ey, my = decompose(y, fmt)
    bits = fmt.significand_bits

    # Zero operands produce a zero significand product, which _normalise
    # keeps at zero and compose turns into the correctly signed zero —
    # the datapath's zero bypass falls out of the pipeline itself.
    product = significand_product(mx, my, bits, config)
    sig, exp = _normalise(product, ex + ey, bits, config.truncated)
    sign = sx ^ sy
    result = compose(sign, exp, sig, fmt)

    # Specials bypass: inf/NaN take the exact float path.
    special = ~np.isfinite(x) | ~np.isfinite(y)
    if np.any(special):
        result = np.where(special, (x * y).astype(np.float32), result)
    return result.astype(np.float32)
