"""Multiplier configurations proposed by the DAISM paper (Table I).

The paper evaluates five variants of the in-SRAM approximate multiplier:

=========  ==========================  ==========
Config.    Precomputed wordlines       Truncation
=========  ==========================  ==========
``FLA``    No                          No
``PC2``    Between 2 partial products  No
``PC3``    Between 3 partial products  No
``PC2_tr`` Between 2 partial products  Yes
``PC3_tr`` Between 3 partial products  Yes
=========  ==========================  ==========

A configuration is described by how many of the most significant partial
products are summed exactly (stored as pre-computed wordlines, selected by
the address decoder) and whether every stored line is truncated to the top
``n`` bits of the ``2n``-bit product.
"""

from __future__ import annotations

import dataclasses
import enum


class Scheme(enum.Enum):
    """Pre-computation scheme for the most significant partial products.

    ``PC4`` is not in the paper's Table I — it is the natural next design
    point (pre-computing all combinations of the top *four* partial
    products) included here as an extension for the ablation benchmarks:
    it shows where the pre-computation idea stops paying (the number of
    stored combination lines doubles per step while the recovered error
    shrinks).
    """

    FLA = "FLA"
    PC2 = "PC2"
    PC3 = "PC3"
    PC4 = "PC4"

    @property
    def precomputed(self) -> int:
        """Number of top partial products whose sum is exact."""
        return {Scheme.FLA: 0, Scheme.PC2: 2, Scheme.PC3: 3, Scheme.PC4: 4}[self]


@dataclasses.dataclass(frozen=True)
class MultiplierConfig:
    """One point in the DAISM multiplier design space.

    Parameters
    ----------
    scheme:
        Pre-computation scheme (:class:`Scheme`).
    truncated:
        When true every stored line keeps only the bits at positions
        ``>= n`` of the ``2n``-bit product (paper's ``_tr`` variants).
    """

    scheme: Scheme
    truncated: bool = False

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``"PC3_tr"``."""
        suffix = "_tr" if self.truncated else ""
        return self.scheme.value + suffix

    @property
    def precomputed(self) -> int:
        """Number of exactly-summed top partial products (0, 2 or 3)."""
        return self.scheme.precomputed

    @classmethod
    def from_name(cls, name: str) -> "MultiplierConfig":
        """Parse a paper-style name such as ``"PC2_tr"`` or ``"fla"``."""
        base = name.strip()
        truncated = base.lower().endswith("_tr")
        if truncated:
            base = base[: -len("_tr")]
        try:
            scheme = Scheme(base.upper())
        except ValueError as exc:
            valid = ", ".join(c.name for c in all_configs())
            raise ValueError(f"unknown multiplier config {name!r}; expected one of: {valid}") from exc
        return cls(scheme=scheme, truncated=truncated)

    def __str__(self) -> str:
        return self.name


#: The five configurations evaluated in the paper (Table I).
FLA = MultiplierConfig(Scheme.FLA)
PC2 = MultiplierConfig(Scheme.PC2)
PC3 = MultiplierConfig(Scheme.PC3)
PC2_TR = MultiplierConfig(Scheme.PC2, truncated=True)
PC3_TR = MultiplierConfig(Scheme.PC3, truncated=True)

#: Extension beyond the paper: four pre-computed partial products.
PC4 = MultiplierConfig(Scheme.PC4)
PC4_TR = MultiplierConfig(Scheme.PC4, truncated=True)


def all_configs() -> tuple[MultiplierConfig, ...]:
    """All five configurations of Table I, in paper order.

    Returns ``(FLA, PC2, PC3, PC2_tr, PC3_tr)`` — the evaluation set
    used by every figure/ablation that sweeps multiplier designs.
    """
    return (FLA, PC2, PC3, PC2_TR, PC3_TR)


def extended_configs() -> tuple[MultiplierConfig, ...]:
    """Table I plus the PC4 extension points (for the ablations).

    Returns :func:`all_configs` followed by ``(PC4, PC4_tr)``, the
    next-deeper pre-computation design points beyond the paper.
    """
    return all_configs() + (PC4, PC4_TR)


def table1_rows() -> list[dict[str, str]]:
    """Rows of the paper's Table I (summary of the proposed multipliers).

    Returns one dict per configuration with the columns ``Config.``,
    ``Precomputed wordlines`` and ``Truncation``, ready for
    :func:`repro.analysis.reporting.format_table`.
    """
    descriptions = {
        0: "No",
        2: "Between 2 PP",
        3: "Between 3 PP",
    }
    return [
        {
            "Config.": cfg.name,
            "Precomputed wordlines": descriptions[cfg.precomputed],
            "Truncation": "Yes" if cfg.truncated else "No",
        }
        for cfg in all_configs()
    ]
