"""Related-work approximate multipliers (the paper's Sec. II-B baselines).

The paper positions its in-SRAM multiplier against two conventional
(out-of-memory) approximate multiplier families:

* **Lower-part-OR (LPO)** — Guo et al., TENCON'18 [3]: the low ``split``
  result columns are approximated by ORing the partial products, the
  upper part is summed exactly ("approximates the lower part of the
  result via PP bitwise OR").  DAISM's FLA is the limiting case
  ``split = 2n`` (everything ORed); its ``_tr`` variants drop what LPO
  approximates.
* **PP compression** — Qiqieh et al., DATE'17 [2]: adjacent partial
  products are OR-compressed in ``stages`` rounds, halving their number
  each round, and the survivors are summed exactly ("decreases PPs by
  performing bitwise OR operations among them.  However, they still
  demand adder trees").

Neither can operate in memory — they still need adder trees — which is
the paper's point; implementing them lets the benchmarks compare error
behaviour on equal footing.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lower_part_or_multiply",
    "lower_part_or_multiply_array",
    "compressed_pp_multiply",
    "compressed_pp_multiply_array",
]


def _check(value: int, bits: int, name: str) -> None:
    if not 0 <= value < (1 << bits):
        raise ValueError(f"{name}={value} does not fit in {bits} unsigned bits")


def lower_part_or_multiply(a: int, b: int, bits: int, split: int) -> int:
    """Guo-style LPO multiplier: OR below ``split``, exact sum above.

    Each partial product is cut at result column ``split``; the low
    parts are ORed (no carries), the high parts go through a normal
    adder.  ``split = 0`` is the exact multiplier, ``split = 2*bits``
    degenerates to FLA.
    """
    _check(a, bits, "a")
    _check(b, bits, "b")
    if not 0 <= split <= 2 * bits:
        raise ValueError(f"split must be in [0, {2 * bits}]")
    mask = (1 << split) - 1
    low_or = 0
    high_sum = 0
    for i in range(bits):
        if (b >> i) & 1:
            pp = a << i
            low_or |= pp & mask
            high_sum += pp >> split
    return (high_sum << split) | low_or


def lower_part_or_multiply_array(
    a: np.ndarray, b: np.ndarray, bits: int, split: int
) -> np.ndarray:
    """Vectorised :func:`lower_part_or_multiply`.

    Parameters
    ----------
    a, b:
        Unsigned operand arrays (broadcastable, values ``< 2**bits``).
    bits:
        Operand width in bits.
    split:
        Bit position dividing the exact upper part from the OR-ed lower
        part; must lie in ``[0, 2*bits]``.
    """
    if not 0 <= split <= 2 * bits:
        raise ValueError(f"split must be in [0, {2 * bits}]")
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    mask = np.uint64((1 << split) - 1)
    low_or = np.zeros(np.broadcast(a, b).shape, dtype=np.uint64)
    high_sum = np.zeros(np.broadcast(a, b).shape, dtype=np.uint64)
    for i in range(bits):
        sel = (b >> np.uint64(i)) & np.uint64(1)
        lane = sel * np.uint64(0xFFFF_FFFF_FFFF_FFFF)
        pp = (a << np.uint64(i)) & lane
        low_or |= pp & mask
        high_sum += pp >> np.uint64(split)
    return (high_sum << np.uint64(split)) | low_or


def compressed_pp_multiply(a: int, b: int, bits: int, stages: int = 1) -> int:
    """Qiqieh-style PP compression: OR adjacent PP pairs, then add.

    Each stage pairs the partial products ``(0,1), (2,3), ...`` and
    replaces every pair by its bitwise OR; after ``stages`` rounds the
    survivors are summed exactly (the adder tree the paper notes these
    designs still need).  ``stages = 0`` is exact.
    """
    _check(a, bits, "a")
    _check(b, bits, "b")
    if stages < 0:
        raise ValueError("stages must be non-negative")
    pps = [(a << i) if (b >> i) & 1 else 0 for i in range(bits)]
    for _ in range(stages):
        if len(pps) <= 1:
            break
        merged = []
        for j in range(0, len(pps) - 1, 2):
            merged.append(pps[j] | pps[j + 1])
        if len(pps) % 2:
            merged.append(pps[-1])
        pps = merged
    return sum(pps)


def compressed_pp_multiply_array(
    a: np.ndarray, b: np.ndarray, bits: int, stages: int = 1
) -> np.ndarray:
    """Vectorised :func:`compressed_pp_multiply`.

    Parameters
    ----------
    a, b:
        Unsigned operand arrays (broadcastable, values ``< 2**bits``).
    bits:
        Operand width in bits.
    stages:
        Number of lossy OR-compression stages applied to the partial
        product array before exact summation (0 = exact multiply).
    """
    if stages < 0:
        raise ValueError("stages must be non-negative")
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    shape = np.broadcast(a, b).shape
    pps = []
    for i in range(bits):
        sel = (b >> np.uint64(i)) & np.uint64(1)
        lane = sel * np.uint64(0xFFFF_FFFF_FFFF_FFFF)
        pps.append(np.broadcast_to((a << np.uint64(i)) & lane, shape).copy())
    for _ in range(stages):
        if len(pps) <= 1:
            break
        merged = []
        for j in range(0, len(pps) - 1, 2):
            merged.append(pps[j] | pps[j + 1])
        if len(pps) % 2:
            merged.append(pps[-1])
        pps = merged
    total = np.zeros(shape, dtype=np.uint64)
    for pp in pps:
        total += pp
    return total
