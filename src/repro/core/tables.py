"""Lookup-table fast path for narrow mantissa multiplies.

For significand widths up to :data:`MAX_TABLE_BITS` the full
``2^bits x 2^bits`` product table fits comfortably in memory (a bfloat16
significand is 8 bits → 65536 uint32 entries).  A tabulated multiply is a
single fancy-indexing gather, an order of magnitude faster than the bit
loop of :mod:`repro.core.vectorized` — this is what makes whole-CNN
accuracy sweeps (Fig. 4) cheap.

Tables are built once per ``(bits, config)`` pair and cached.  This
module tabulates the *raw significand products*; the GEMM-level tables
derived from them (the float32 value table, the fused uint32 compose
entries and the BLAS-factored correction) live in
:mod:`repro.core.kernels`, with their own cache instrumentation.
"""

from __future__ import annotations

import functools

import numpy as np

from .config import MultiplierConfig, Scheme
from .vectorized import approx_multiply_array

__all__ = ["MAX_TABLE_BITS", "product_table", "tabulated_multiply", "table_supported"]

#: Widest operand for which a full product table is built (2^(2*12) entries
#: of 4 bytes = 64 MiB is the ceiling we allow).
MAX_TABLE_BITS = 12


def table_supported(bits: int) -> bool:
    """Whether a full product table is built for this operand width."""
    return 1 <= bits <= MAX_TABLE_BITS


@functools.lru_cache(maxsize=32)
def _cached_table(bits: int, scheme: Scheme, truncated: bool) -> np.ndarray:
    config = MultiplierConfig(scheme, truncated)
    operands = np.arange(1 << bits, dtype=np.uint64)
    a = operands[:, None]
    b = operands[None, :]
    full = approx_multiply_array(a, b, bits, config)
    table = full.astype(np.uint32)
    table.setflags(write=False)
    return table


def product_table(bits: int, config: MultiplierConfig) -> np.ndarray:
    """The full ``(2^bits, 2^bits)`` approximate product table (read-only).

    ``table[a, b]`` equals
    :func:`repro.core.mantissa.approx_multiply` ``(a, b, bits, config)``.
    """
    if not table_supported(bits):
        raise ValueError(f"no table for {bits}-bit operands (max {MAX_TABLE_BITS})")
    return _cached_table(bits, config.scheme, config.truncated)


def tabulated_multiply(
    a: np.ndarray, b: np.ndarray, bits: int, config: MultiplierConfig
) -> np.ndarray:
    """Approximate product via table gather; same contract as the bit loop.

    Parameters
    ----------
    a, b:
        Unsigned operand arrays (any broadcastable shape, values
        ``< 2**bits``).
    bits:
        Operand width; the backing :func:`product_table` is
        ``2**bits x 2**bits`` and memoised per (bits, config).
    config:
        Multiplier configuration whose products are tabulated.
    """
    table = product_table(bits, config)
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    return table[a, b].astype(np.uint64)
