"""Certified tier routing: pick the GEMM tier per (format, config, shape).

The registry (:mod:`repro.core.kernels`) answers "give me this kernel by
name"; this module answers "which kernel *should* run".  Passing
``kernel="auto"`` to ``approx_matmul`` / the backends / ``compile_plan``
delegates the choice to :func:`route_kernel`, which picks between

* the **bit-exact tier** (``float_table_native`` when numba is active,
  ``float_table`` otherwise) — always correct, and the right answer for
  tiny problems where fast-path setup overhead dominates; and
* a **certified fast path** (the :data:`FAST_TIERS` ladder:
  ``blas_factored_fast`` with its rank ~1-3 correction, then the full
  ``blas_factored``) — one to two orders of magnitude faster, *not*
  bit-exact, and therefore gated on a certificate: the measured
  Frobenius deviation from the bit-exact tier on a fixed probe GEMM
  must sit well inside the paper's own analytic
  ``worst_case_relative_error`` bound for the config
  (:mod:`repro.core.error_bounds`).  The cheapest certified tier wins;
  a config whose corrections cannot clear the margin never routes off
  the exact tier.

Certification is deterministic (fixed probe, fixed seed) and cached per
process, so every process — including fleet workers rebuilding plans
from snapshots — derives the *same* decision, which keeps cross-process
``plan_digest`` parity intact.  Measured decisions
(:func:`autotune_tier`) can override the certificate-based policy via
the recorded-tier table and persist through
:class:`~repro.core.tune_cache.TuneCache`.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np

from ..formats.floatfmt import FloatFormat
from . import integrity
from .config import MultiplierConfig
from .error_bounds import worst_case_relative_error
from .kernels import (
    GemmKernel,
    default_k_chunk,
    exact_tier_name,
    get_kernel,
    select_kernel,
    shape_class,
)
from .tables import table_supported

__all__ = [
    "AUTO_KERNEL",
    "FAST_TIERS",
    "TierCertificate",
    "TierDecision",
    "autotune_tier",
    "certify_fast_path",
    "record_tier",
    "recorded_tiers",
    "reset_recorded_tiers",
    "route_decision",
    "route_decision_sla",
    "route_kernel",
]

#: The kernel-name sentinel that turns routing on.  Everywhere a kernel
#: name is plumbed (backends, snapshots, CLIs), ``"auto"`` means "let
#: :func:`route_kernel` decide per op".
AUTO_KERNEL = "auto"

#: Default certification margin: the measured fast-path deviation must
#: be at most this fraction of the analytic worst-case bound.
CERT_MARGIN = 0.25

#: Probe GEMM used to measure fast-path deviation — big enough to be
#: representative, small enough to certify in milliseconds.
CERT_SHAPE = (96, 128, 48)

#: Fast-path candidates in preference order: the cheapest tier first.
#: The router takes the first one whose certificate clears the margin.
FAST_TIERS = ("blas_factored_fast", "blas_factored")


@dataclasses.dataclass(frozen=True)
class TierCertificate:
    """Measured-vs-analytic error evidence for the ``blas_factored`` path.

    Parameters
    ----------
    fmt:
        Operand format name.
    config:
        Multiplier config name.
    shape:
        Probe GEMM shape the deviation was measured on.
    rank:
        Correction rank ``blas_factored`` uses for this pair.
    rel_frobenius_residual:
        Relative Frobenius residual of the truncated correction table.
    measured_rel_error:
        Measured relative Frobenius deviation of the fast path from the
        bit-exact tier on the probe GEMM.
    analytic_bound:
        The paper's ``worst_case_relative_error`` for the config.
    margin:
        Required ``measured <= margin * analytic_bound`` headroom.
    certified:
        Whether the fast path cleared the margin.
    kernel:
        The fast-path kernel the certificate is for (one of
        :data:`FAST_TIERS`).
    """

    fmt: str
    config: str
    shape: tuple[int, int, int]
    rank: int
    rel_frobenius_residual: float
    measured_rel_error: float
    analytic_bound: float
    margin: float
    certified: bool
    kernel: str = "blas_factored"


_CERT_CACHE: dict[tuple, TierCertificate] = {}
_CERT_LOCK = threading.Lock()

_RECORDED: dict[tuple[str, str, str], str] = {}
_RECORDED_LOCK = threading.Lock()


def certify_fast_path(
    fmt: FloatFormat,
    config: MultiplierConfig,
    shape: tuple[int, int, int] = CERT_SHAPE,
    seed: int = 0,
    margin: float = CERT_MARGIN,
    kernel: str = "blas_factored",
) -> TierCertificate:
    """Measure a fast-path ``kernel`` against the exact tier and certify it.

    Runs both kernels on a fixed random probe GEMM and compares the
    relative Frobenius deviation to ``margin *
    worst_case_relative_error(config)``.  Deterministic (fixed probe and
    seed) and cached per ``(fmt, config, shape, seed, margin, kernel)``,
    so repeated routing decisions are free and identical across
    processes.
    """
    key = (fmt.name, config.name, tuple(shape), seed, margin, kernel)
    with _CERT_LOCK:
        cached = _CERT_CACHE.get(key)
        if cached is not None:
            return cached
    from ..formats.packed import pack

    m, k, n = shape
    rng = np.random.default_rng(seed)
    pa = pack(rng.standard_normal((m, k)).astype(np.float32), fmt)
    pb = pack(rng.standard_normal((k, n)).astype(np.float32), fmt)
    k_chunk = default_k_chunk(m, n)
    exact = get_kernel("float_table").run(pa, pb, config, k_chunk)
    fast_kernel = get_kernel(kernel)
    fast = fast_kernel.run(pa, pb, config, k_chunk)
    denom = float(np.linalg.norm(exact)) or 1.0
    measured = float(np.linalg.norm(fast - exact)) / denom
    bound = float(worst_case_relative_error(config, fmt.significand_bits))
    info = fast_kernel.correction_info(fmt, config)
    cert = TierCertificate(
        fmt=fmt.name,
        config=config.name,
        shape=(m, k, n),
        rank=int(info["rank"]),
        rel_frobenius_residual=float(info["rel_frobenius_residual"]),
        measured_rel_error=measured,
        analytic_bound=bound,
        margin=margin,
        certified=measured <= margin * bound,
        kernel=kernel,
    )
    with _CERT_LOCK:
        return _CERT_CACHE.setdefault(key, cert)


@dataclasses.dataclass(frozen=True)
class TierDecision:
    """One routing decision: which kernel, for which class, and why.

    Parameters
    ----------
    kernel:
        Chosen kernel name.
    shape_class:
        The :func:`~repro.core.kernels.shape_class` the decision is for.
    reason:
        Human-readable justification (shown in ``describe()``/benches).
    certificate:
        The :class:`TierCertificate` consulted, if any.
    """

    kernel: str
    shape_class: str
    reason: str
    certificate: TierCertificate | None = None


def record_tier(
    fmt: FloatFormat, config: MultiplierConfig, shape_cls: str, kernel: str
) -> None:
    """Pin the routed tier for ``(fmt, config, shape_cls)`` in-process.

    Measured decisions (:func:`autotune_tier`, or a TuneCache replay)
    take precedence over the certificate-based default policy.
    """
    get_kernel(kernel)  # validate early, with the structured error
    with _RECORDED_LOCK:
        _RECORDED[(fmt.name, config.name, shape_cls)] = kernel


def recorded_tiers() -> dict:
    """Snapshot of all pinned ``(fmt, config, shape_class) -> kernel`` tiers."""
    with _RECORDED_LOCK:
        return dict(_RECORDED)


def reset_recorded_tiers() -> None:
    """Drop all pinned tiers (back to the certificate-based policy)."""
    with _RECORDED_LOCK:
        _RECORDED.clear()


def route_decision(
    fmt: FloatFormat,
    config: MultiplierConfig | None = None,
    kernel: str | None = None,
    shape: tuple[int | None, int, int] | None = None,
) -> TierDecision:
    """Decide which kernel ``"auto"`` resolves to for one op.

    Policy, in order: an explicit kernel name (or ``None``) bypasses
    routing entirely; formats without tables, and exact-product ops
    (``config=None``), stay on their bit-exact default; a tier pinned
    via :func:`record_tier` wins; tiny shapes stay on the gather tier
    (fast-path setup overhead dominates); otherwise the first
    :data:`FAST_TIERS` candidate :func:`certify_fast_path` certifies
    for the config wins, falling back to the exact tier when none do.

    ``shape`` is ``(m, k, n)`` with ``m=None`` allowed (plan compile
    time, batch unknown — classed ``general``).
    """
    cls = shape_class(*shape) if shape is not None else "general"
    if kernel != AUTO_KERNEL:
        found = select_kernel(fmt, config, kernel)
        reason = "explicit kernel" if kernel else "bit-exact default tier"
        return TierDecision(kernel=found.name, shape_class=cls, reason=reason)
    if not table_supported(fmt.significand_bits) or config is None:
        found = select_kernel(fmt, config, None)
        return TierDecision(
            kernel=found.name,
            shape_class=cls,
            reason="no certified fast path (exact products or untabulated format)",
        )
    if integrity.is_demoted(fmt, config):
        # Corruption recurred on this config's tables: the integrity
        # subsystem pinned it to the bit-exact path.  Overrides recorded
        # (autotuned) tiers — a measured speed win never outranks a
        # correctness demotion.
        return TierDecision(
            kernel=exact_tier_name(fmt),
            shape_class=cls,
            reason="integrity demotion: corruption recurred on this config",
        )
    with _RECORDED_LOCK:
        pinned = _RECORDED.get((fmt.name, config.name, cls))
    if pinned is not None:
        return TierDecision(kernel=pinned, shape_class=cls, reason="recorded tier")
    if cls == "tiny":
        return TierDecision(
            kernel=exact_tier_name(fmt),
            shape_class=cls,
            reason="tiny shape: fast-path setup overhead dominates",
        )
    cert = None
    for candidate in FAST_TIERS:
        cert = certify_fast_path(fmt, config, kernel=candidate)
        if cert.certified:
            return TierDecision(
                kernel=candidate,
                shape_class=cls,
                reason=(
                    f"certified: measured {cert.measured_rel_error:.2e} <= "
                    f"{cert.margin:g} x analytic bound {cert.analytic_bound:.3g}"
                ),
                certificate=cert,
            )
    return TierDecision(
        kernel=exact_tier_name(fmt),
        shape_class=cls,
        reason=(
            f"no fast tier certified: best measured "
            f"{cert.measured_rel_error:.2e} > "
            f"{cert.margin:g} x analytic bound {cert.analytic_bound:.3g}"
        ),
        certificate=cert,
    )


def route_decision_sla(
    fmt: FloatFormat,
    config: MultiplierConfig | None = None,
    predicted_exact_ms: float | None = None,
    sla_budget_ms: float | None = None,
    shape: tuple[int | None, int, int] | None = None,
) -> TierDecision:
    """SLA-aware tier choice: bit-exact unless it cannot meet the deadline.

    The quality-first inversion of :func:`route_decision`'s fastest-
    certified policy, used by the cost-model scheduler: the **bit-exact
    tier wins whenever it can** — no SLA budget, no calibrated
    prediction, or a prediction inside the budget all stay exact — and
    only genuine SLA pressure (``predicted_exact_ms > sla_budget_ms``)
    routes to a fast tier.  Even then the ladder is the same certified
    one: the first :data:`FAST_TIERS` candidate whose
    :func:`certify_fast_path` certificate clears the margin; a config
    with no certified fast tier stays bit-exact *and misses the SLA*
    rather than serve uncertified arithmetic.  Integrity demotions
    override everything, exactly as in :func:`route_decision`.
    """
    cls = shape_class(*shape) if shape is not None else "general"
    exact = select_kernel(fmt, config, None).name
    if not table_supported(fmt.significand_bits) or config is None:
        return TierDecision(
            kernel=exact,
            shape_class=cls,
            reason="no certified fast path (exact products or untabulated format)",
        )
    if integrity.is_demoted(fmt, config):
        return TierDecision(
            kernel=exact_tier_name(fmt),
            shape_class=cls,
            reason="integrity demotion: corruption recurred on this config",
        )
    if predicted_exact_ms is None or sla_budget_ms is None:
        return TierDecision(
            kernel=exact,
            shape_class=cls,
            reason="bit-exact default: no SLA budget or uncalibrated prediction",
        )
    if predicted_exact_ms <= sla_budget_ms:
        return TierDecision(
            kernel=exact,
            shape_class=cls,
            reason=(
                f"bit-exact meets SLA: predicted {predicted_exact_ms:.2f} ms <= "
                f"budget {sla_budget_ms:.2f} ms"
            ),
        )
    cert = None
    for candidate in FAST_TIERS:
        cert = certify_fast_path(fmt, config, kernel=candidate)
        if cert.certified:
            return TierDecision(
                kernel=candidate,
                shape_class=cls,
                reason=(
                    f"sla pressure: predicted exact {predicted_exact_ms:.2f} ms > "
                    f"budget {sla_budget_ms:.2f} ms; certified "
                    f"{cert.measured_rel_error:.2e} <= {cert.margin:g} x "
                    f"analytic bound {cert.analytic_bound:.3g}"
                ),
                certificate=cert,
            )
    return TierDecision(
        kernel=exact_tier_name(fmt),
        shape_class=cls,
        reason=(
            "sla pressure but no certified fast tier: staying bit-exact "
            f"(best measured {cert.measured_rel_error:.2e} > "
            f"{cert.margin:g} x analytic bound {cert.analytic_bound:.3g})"
        ),
        certificate=cert,
    )


def route_kernel(
    fmt: FloatFormat,
    config: MultiplierConfig | None = None,
    kernel: str | None = None,
    shape: tuple[int | None, int, int] | None = None,
) -> GemmKernel:
    """Resolve a kernel name — ``"auto"`` routes, anything else selects.

    The drop-in superset of :func:`~repro.core.kernels.select_kernel`
    that ``approx_matmul`` and ``compile_plan`` call: explicit names
    (and ``None``) behave exactly as before; ``"auto"`` applies the
    :func:`route_decision` policy for the given shape.
    """
    if kernel != AUTO_KERNEL:
        return select_kernel(fmt, config, kernel)
    return get_kernel(route_decision(fmt, config, kernel, shape).kernel)


def autotune_tier(
    fmt: FloatFormat,
    config: MultiplierConfig,
    shape: tuple[int, int, int] = (256, 288, 64),
    cache: "TuneCache | None" = None,
    margin: float = CERT_MARGIN,
    reps: int = 2,
    seed: int = 0,
) -> dict:
    """Measure the certified candidates on ``shape`` and pin the winner.

    Times the bit-exact tier and every **certified** :data:`FAST_TIERS`
    candidate on a random ``shape`` GEMM (best of ``reps``), pins the
    winner for the shape's class via :func:`record_tier`, and persists
    it through ``cache`` (a :class:`~repro.core.tune_cache.TuneCache`)
    when given.  A cache hit replays the persisted tier without
    re-measuring.  Returns a report dict: ``tier``, ``shape_class``,
    ``timings_ms``, ``source`` (``measured``/``cache``), and the
    certificate of the routed fast tier (or ``None``) as a dict.
    """
    from ..formats.packed import pack

    m, k, n = shape
    cls = shape_class(m, k, n)
    cache_key = f"router/{fmt.name}/{config.name}"
    if cache is not None:
        entry = cache.get(cache_key, cls)
        if entry is not None and entry.get("tier"):
            record_tier(fmt, config, cls, entry["tier"])
            return {
                "tier": entry["tier"],
                "shape_class": cls,
                "timings_ms": entry.get("timings_ms") or {},
                "source": "cache",
                "certificate": None,
            }
    candidates = [exact_tier_name(fmt)]
    cert = None
    for candidate in FAST_TIERS:
        found_cert = certify_fast_path(
            fmt, config, margin=margin, seed=seed, kernel=candidate
        )
        if found_cert.certified:
            candidates.append(candidate)
            if cert is None:
                cert = found_cert  # the tier route_decision would pick
    rng = np.random.default_rng(seed)
    pa = pack(rng.standard_normal((m, k)).astype(np.float32), fmt)
    pb = pack(rng.standard_normal((k, n)).astype(np.float32), fmt)
    k_chunk = default_k_chunk(m, n)
    timings: dict[str, float] = {}
    for name in candidates:
        found = get_kernel(name)
        found.run(pa, pb, config, k_chunk)  # warm (tables, JIT)
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            found.run(pa, pb, config, k_chunk)
            best = min(best, time.perf_counter() - t0)
        timings[name] = best * 1e3
    chosen = min(timings, key=timings.get)
    record_tier(fmt, config, cls, chosen)
    if cache is not None:
        cache.put(cache_key, cls, tier=chosen, timings_ms=timings)
    return {
        "tier": chosen,
        "shape_class": cls,
        "timings_ms": timings,
        "source": "measured",
        "certificate": dataclasses.asdict(cert) if cert is not None else None,
    }
