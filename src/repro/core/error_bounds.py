"""Analytic worst-case error bounds for the OR-approximate multiplier.

The OR of the selected partial products underestimates their sum by
exactly the carries it drops.  For a PCk configuration on ``n``-bit
FP-range operands (both MSBs set), the exactly-summed top part carries
at least ``a * 2^(n-1) * b_top`` of the product's mass, so the dropped
mass — everything the non-pre-computed low lines could have contributed
— is bounded by the sum of the low partial products:

    dropped <= sum_{i < n-k} (a << i) < a * 2^(n-k)

relative to ``a * b >= a * 2^(n-1) * 2^(n-1) / 2^(n-1) = a * 2^(n-1)``,
giving the closed-form bound ``rel_err < 2^(1-k)`` for PCk (k >= 1) and
``rel_err < 1`` for FLA.  The truncated variants add at most one unit in
the ``n``-th result bit per line.

These bounds are loose by design (they assume every dropped carry was
real); the test suite checks them against the exhaustive maxima, and the
exhaustive maxima against the paper-relevant operating points.
"""

from __future__ import annotations

from .config import MultiplierConfig

__all__ = ["worst_case_relative_error", "truncation_extra_error"]


def worst_case_relative_error(config: MultiplierConfig, bits: int) -> float:
    """Closed-form upper bound on the relative error, FP-range operands.

    For PCk the top k partial products are exact; the OR can only lose
    value carried by the remaining ``n - k`` lines, whose total is below
    ``a * 2^(n-k)``.  With ``b >= 2^(n-1)`` the exact product is at least
    ``a * 2^(n-1)``, so the relative loss is below ``2^(1-k)``.

    FLA (k = 0) keeps the largest line exact only (the A line, always
    active for FP operands), giving the same expression with k = 1
    replaced by the OR's one-line guarantee: bound ``1/2 + ...`` — we
    conservatively return 1.0 minus the guaranteed A-line mass, i.e. 0.5.
    """
    if bits < 2:
        raise ValueError("bits must be >= 2")
    k = min(config.precomputed, bits - 1)
    if k == 0:
        # The A line alone guarantees at least a * 2^(n-1) of the product
        # mass, and the product is below a * 2^n: at most half is lost.
        bound = 0.5
    else:
        bound = 2.0 ** (1 - k)
    if config.truncated:
        bound += truncation_extra_error(bits)
    return min(bound, 1.0)


def truncation_extra_error(bits: int) -> float:
    """Additional relative error available to the ``_tr`` variants.

    Truncation drops the low ``n`` result bits, worth less than
    ``2^n``, against a product of at least ``2^(2n-2)``: an additive
    relative term below ``2^(2-n)``.
    """
    if bits < 2:
        raise ValueError("bits must be >= 2")
    return 2.0 ** (2 - bits)
