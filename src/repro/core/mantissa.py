"""Scalar reference models of the in-SRAM approximate mantissa multiplier.

These are the *functional ground truth* for every other implementation in
the repository (the vectorised numpy kernels in
:mod:`repro.core.vectorized`, the lookup tables in
:mod:`repro.core.tables` and the structural bit-level SRAM simulation in
:mod:`repro.sram.bank` are all cross-validated against this module in the
test suite).

Terminology follows Sec. III of the paper.  For ``n``-bit unsigned
operands ``a`` (multiplicand, stored in the SRAM) and ``b`` (multiplier,
driving the address decoder):

* partial product ``i`` is ``a << i`` and is named with capital letters
  from the top: ``A = a << (n-1)``, ``B = a << (n-2)``, ..., down to the
  unshifted multiplicand.
* ``FLA`` reads the bitwise OR of the partial products selected by the set
  bits of ``b`` — no adder tree, no carries.
* ``PC2`` / ``PC3`` store the *exact* sums of every combination of the top
  2 / top 3 partial products as pre-computed wordlines; the decoder picks
  the single pre-computed line matching the top bits of ``b`` and ORs it
  with the remaining plain partial products.
* the ``_tr`` variants truncate every stored line to the bits at positions
  ``>= n`` of the ``2n``-bit product, so the read-out is only ``n`` bits
  wide (the paper's arbitrary truncation, enabled by the absence of
  carries).
"""

from __future__ import annotations

from .config import MultiplierConfig

__all__ = [
    "exact_multiply",
    "or_multiply",
    "approx_multiply",
    "approx_multiply_truncated",
    "activated_line_values",
]


def _check_operand(value: int, bits: int, name: str) -> None:
    if not 0 <= value < (1 << bits):
        raise ValueError(f"{name}={value} does not fit in {bits} unsigned bits")


def exact_multiply(a: int, b: int, bits: int) -> int:
    """Exact ``2*bits``-wide product — the adder-tree reference.

    Parameters
    ----------
    a, b:
        Unsigned ``bits``-wide operands (validated; out-of-range raises
        ``ValueError``).
    bits:
        Operand width, e.g. 8 for the bfloat16 significand.
    """
    _check_operand(a, bits, "a")
    _check_operand(b, bits, "b")
    return a * b


def or_multiply(a: int, b: int, bits: int) -> int:
    """FLA multiplier: bitwise OR of the selected partial products.

    Models simultaneous multi-wordline activation with wired-OR
    bitlines and no adder tree: every partial product ``a << i`` whose
    selector bit ``b[i]`` is set is OR-ed (not added) into the result.

    Parameters
    ----------
    a, b:
        Unsigned ``bits``-wide operands; ``a`` is the stored operand,
        ``b`` drives the wordline selection.
    bits:
        Operand width in bits.
    """
    _check_operand(a, bits, "a")
    _check_operand(b, bits, "b")
    acc = 0
    for i in range(bits):
        if (b >> i) & 1:
            acc |= a << i
    return acc


def approx_multiply(a: int, b: int, bits: int, config: MultiplierConfig) -> int:
    """Approximate product of two ``bits``-wide unsigned integers.

    Implements all five Table I configurations.  The result is the full
    ``2*bits``-wide value for untruncated configs; for truncated configs it
    is the ``bits``-wide top half (use
    :func:`approx_multiply_truncated` semantics: the caller re-scales).

    The pre-computed part is *exact by construction*: a wordline that
    stores the sum ``A + B (+ C)`` holds precisely
    ``a * (top_bits_of_b << shift)``.  The OR between that line and the
    remaining plain partial-product lines is still an OR — matching the
    wired-OR read of the SRAM.
    """
    _check_operand(a, bits, "a")
    _check_operand(b, bits, "b")
    k = min(config.precomputed, bits)
    low_bits = bits - k

    if config.truncated:
        return approx_multiply_truncated(a, b, bits, config)

    acc = 0
    if k:
        top = b >> low_bits
        acc = a * (top << low_bits)
    for i in range(low_bits):
        if (b >> i) & 1:
            acc |= a << i
    return acc


def approx_multiply_truncated(a: int, b: int, bits: int, config: MultiplierConfig) -> int:
    """Truncated variant: every stored line keeps bits ``>= bits`` only.

    Returns the ``bits``-wide top half of the product, i.e. a value that
    approximates ``(a * b) >> bits``.  Truncation is applied to each line
    *before* the wired OR (that is what the hardware stores), so
    ``tr(x) | tr(y) == tr(x | y)`` for the plain lines but the pre-computed
    sum is truncated after being summed exactly.
    """
    _check_operand(a, bits, "a")
    _check_operand(b, bits, "b")
    k = min(config.precomputed, bits)
    low_bits = bits - k

    acc = 0
    if k:
        top = b >> low_bits
        acc = (a * (top << low_bits)) >> bits
    for i in range(low_bits):
        if (b >> i) & 1:
            acc |= (a << i) >> bits
    return acc


def activated_line_values(b: int, bits: int, config: MultiplierConfig) -> list[tuple[str, int]]:
    """Describe which wordlines the decoder activates for multiplier ``b``.

    Returns a list of ``(kind, payload)`` pairs where ``kind`` is either
    ``"pp"`` (a plain partial product line, payload = shift amount) or
    ``"pc"`` (a pre-computed line, payload = the top-bits value whose exact
    sum the line stores, already shifted into position).

    This is the contract between the arithmetic model and the structural
    SRAM decoder — :mod:`repro.sram.decoder` activates exactly these lines.
    """
    _check_operand(b, bits, "b")
    k = min(config.precomputed, bits)
    low_bits = bits - k

    lines: list[tuple[str, int]] = []
    if k:
        top = b >> low_bits
        if top:
            lines.append(("pc", top << low_bits))
    for i in range(low_bits):
        if (b >> i) & 1:
            lines.append(("pp", i))
    return lines


def max_simultaneous_lines(bits: int, config: MultiplierConfig) -> int:
    """Worst-case number of simultaneously active wordlines.

    One of the paper's arguments for PC3 over FLA (Sec. V-D reason 2):
    pre-computation reduces how many lines must be activated at once,
    easing the multiple-wordline-activation constraint of the substrate
    SRAM [15].
    """
    k = min(config.precomputed, bits)
    low_bits = bits - k
    pc_lines = 1 if k else 0
    return pc_lines + low_bits
