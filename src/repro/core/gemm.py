"""Approximate GEMM built on the in-SRAM approximate multiplier.

On the accelerator, a GEMM is a stream of approximate scalar products that
a conventional accumulator sums (Sec. IV-A: SRAM rows produce products,
the adder at the bottom accumulates).  This module reproduces exactly
that: elementwise approximate FP products, exact accumulation in float32.

Three backends with a common ``matmul`` interface let the numpy DNN stack
(:mod:`repro.nn`) swap arithmetic without touching model code:

* :class:`ExactMatmul` — plain float32 ``A @ B`` (the paper's baseline);
* :class:`QuantizedMatmul` — quantise to a format, then exact products
  (isolates quantisation error from approximation error);
* :class:`ApproxMatmul` — quantise and run every product through the
  approximate multiplier (the DAISM datapath).

Operands flow through :class:`~repro.formats.packed.PackedTensor`: each
side is quantised and decomposed exactly once per tensor (mirroring the
one-time SRAM write of the paper's datapath), and pre-packed operands —
built via ``MatmulBackend.prepare`` — skip that front end entirely.  All
backends additionally accept stacked ``(B, M, K) @ (K, N)`` inputs,
flattening the batch into the row dimension so a whole batch runs as one
GEMM with bit-identical per-sample results.

For table-supported significand widths the kernel collapses the
normalise+compose back end into a single pre-computed ``uint32`` lookup
(fraction bits, exponent bump and nonzero flag per significand pair), so
the per-product work in the hot loop is one gather plus a handful of
narrow integer ops — several times faster than running the FP pipeline
per element, and bit-identical to it by construction.
"""

from __future__ import annotations

import dataclasses
import functools

import numpy as np

from ..formats.floatfmt import FLOAT32, FloatFormat, compose, quantize
from ..formats.packed import PackedTensor, pack
from .config import MultiplierConfig, Scheme
from .fp_mul import _normalise, significand_product
from .tables import table_supported

__all__ = [
    "approx_matmul",
    "MatmulBackend",
    "ExactMatmul",
    "QuantizedMatmul",
    "ApproxMatmul",
]


def _default_chunk(m: int, n: int, budget_elems: int = 1 << 22) -> int:
    """Reduction-chunk size keeping the (m, chunk, n) block under budget."""
    per_k = max(1, m * n)
    return max(1, budget_elems // per_k)


@functools.lru_cache(maxsize=64)
def _fused_table(bits: int, scheme: Scheme, truncated: bool) -> np.ndarray:
    """Pre-computed normalise+compose of every significand pair.

    Entry layout (uint32), indexed ``[ma, mb]``:

    * bits 0..22  — the float32 fraction field of the normalised product
      (already shifted into container position);
    * bit 23      — the exponent bump from normalisation overflow;
    * bit 24      — nonzero flag (0 exactly when the product is zero).

    The entries are derived by running the real pipeline
    (:func:`significand_product` + :func:`~repro.core.fp_mul._normalise`)
    over the full operand square, so a gather from this table is
    bit-identical to the per-element FP back end it replaces.
    """
    config = MultiplierConfig(scheme, truncated)
    operands = np.arange(1 << bits, dtype=np.uint64)
    product = significand_product(operands[:, None], operands[None, :], bits, config)
    sig, bump = _normalise(product, np.zeros_like(product, dtype=np.int64), bits, truncated)
    nonzero = product != 0
    mantissa_bits = bits - 1
    frac = ((sig & np.uint64((1 << mantissa_bits) - 1)) << np.uint64(23 - mantissa_bits)).astype(
        np.uint32
    )
    entry = frac | (bump.astype(np.uint32) << np.uint32(23))
    entry |= nonzero.astype(np.uint32) << np.uint32(24)
    entry.setflags(write=False)
    return entry


def _as_packed(x: np.ndarray | PackedTensor, fmt: FloatFormat, side: str) -> PackedTensor:
    """Pack a float operand, or validate an already-packed one."""
    if isinstance(x, PackedTensor):
        if x.fmt != fmt:
            raise ValueError(
                f"packed operand {side} is {x.fmt.name}, matmul expects {fmt.name}"
            )
        return x
    return pack(x, fmt)


def _matmul_fused(
    pa: PackedTensor, pb: PackedTensor, config: MultiplierConfig, k_chunk: int
) -> np.ndarray:
    """2-D packed GEMM through the fused product table."""
    fmt = pa.fmt
    m, k = pa.shape
    n = pb.shape[1]
    table = _fused_table(fmt.significand_bits, config.scheme, config.truncated)

    ma, mb = pa.significand, pb.significand
    ea, eb = pa.exponent, pb.exponent
    sa31 = pa.sign << np.uint32(31)
    sb31 = pb.sign << np.uint32(31)
    emax = fmt.max_exponent - fmt.bias
    emin = 1 - fmt.bias
    inf_bits = np.uint32(0x7F80_0000)
    nz_flag = np.uint32(1 << 24)

    out = np.zeros((m, n), dtype=np.float32)
    for start in range(0, k, k_chunk):
        stop = min(k, start + k_chunk)
        entry = table[ma[:, start:stop, None], mb[None, start:stop, :]]
        exp = ea[:, start:stop, None] + eb[None, start:stop, :]
        exp = exp + ((entry >> np.uint32(23)) & np.uint32(1)).view(np.int32)

        nonzero = entry >= nz_flag
        overflow = exp > emax
        ok = nonzero & ~overflow & ~(exp < emin)
        # In-range biased exponents fit int32 even after <<23; out-of-range
        # lanes may wrap but are masked out by `ok`/`overflow` below.
        base = ((exp + 127) << 23).view(np.uint32)
        bits32 = np.where(ok, base | (entry & np.uint32(0x007F_FFFF)), np.uint32(0))
        bits32 = np.where(nonzero & overflow, inf_bits, bits32)
        bits32 = bits32 | (sa31[:, start:stop, None] ^ sb31[None, start:stop, :])
        out += bits32.view(np.float32).sum(axis=1, dtype=np.float32)
    return out


def _matmul_generic(
    pa: PackedTensor, pb: PackedTensor, config: MultiplierConfig, k_chunk: int
) -> np.ndarray:
    """2-D packed GEMM through the per-element FP pipeline.

    Used for significand widths too wide to tabulate (e.g. float32).  The
    normalise/compose path is zero-aware: a zero operand yields a zero
    product from the multiplier, which :func:`_normalise` keeps at zero
    and :func:`compose` turns into a (signed) zero — no placeholder
    significand needed.
    """
    fmt = pa.fmt
    m, k = pa.shape
    n = pb.shape[1]
    bits = fmt.significand_bits

    sa, ea, ma = pa.sign, pa.exponent, pa.significand
    sb, eb, mb = pb.sign, pb.exponent, pb.significand

    out = np.zeros((m, n), dtype=np.float32)
    for start in range(0, k, k_chunk):
        stop = min(k, start + k_chunk)
        mx = ma[:, start:stop, None].astype(np.uint64)
        my = mb[None, start:stop, :].astype(np.uint64)
        ex = ea[:, start:stop, None].astype(np.int64)
        ey = eb[None, start:stop, :].astype(np.int64)
        sx = sa[:, start:stop, None]
        sy = sb[None, start:stop, :]

        product = significand_product(mx, my, bits, config)
        sig, exp = _normalise(product, ex + ey, bits, config.truncated)
        values = compose(sx ^ sy, exp, sig, fmt)
        out += values.sum(axis=1, dtype=np.float32)
    return out


def approx_matmul(
    a: np.ndarray | PackedTensor,
    b: np.ndarray | PackedTensor,
    fmt: FloatFormat,
    config: MultiplierConfig,
    k_chunk: int | None = None,
) -> np.ndarray:
    """``a @ b`` with every scalar product computed approximately.

    Parameters
    ----------
    a:
        ``(M, K)`` or batched ``(B, M, K)`` float array, or an equally
        shaped :class:`~repro.formats.packed.PackedTensor`.  Float inputs
        are quantised to ``fmt`` internally (once); packed inputs are
        consumed as-is with zero re-quantise/decompose work.
    b:
        ``(K, N)`` float array or ``PackedTensor``.
    fmt:
        Operand floating point format (e.g. bfloat16).  Packed operands
        must have been packed to the same format.
    config:
        Multiplier configuration (Table I).
    k_chunk:
        Reduction chunk size; defaults to a memory-bounded choice
        computed from the *total* row count, so a batched call is
        bit-identical to the same rows flattened into one 2-D GEMM.

    Returns
    -------
    ``(M, N)`` (or ``(B, M, N)``) float32 result, accumulated exactly in
    float32.
    """
    pa = _as_packed(a, fmt, "a")
    pb = _as_packed(b, fmt, "b")
    if pa.ndim not in (2, 3) or pb.ndim != 2 or pa.shape[-1] != pb.shape[0]:
        raise ValueError(f"shape mismatch for matmul: {pa.shape} @ {pb.shape}")

    batched = pa.ndim == 3
    if batched:
        batch, m, k = pa.shape
        pa = pa.reshape(batch * m, k)
    rows, _ = pa.shape
    n = pb.shape[1]
    if k_chunk is None:
        k_chunk = _default_chunk(rows, n)

    kernel = _matmul_fused if table_supported(fmt.significand_bits) else _matmul_generic
    out = kernel(pa, pb, config, k_chunk)
    if batched:
        return out.reshape(batch, m, n)
    return out


def _flatten_batch(a: np.ndarray) -> tuple[np.ndarray, tuple[int, ...] | None]:
    """Collapse a ``(B, M, K)`` operand to ``(B*M, K)``; 2-D passes through."""
    if a.ndim == 3:
        b, m, k = a.shape
        return a.reshape(b * m, k), (b, m)
    return a, None


class MatmulBackend:
    """Interface: a named object computing ``matmul(a, b) -> (M, N)``.

    ``a`` is ``(M, K)`` — or batched ``(B, M, K)``, returning
    ``(B, M, N)`` — and ``b`` is ``(K, N)``; implementations return a
    float32 product.  The ``name`` attribute labels result columns in the
    accuracy studies.  This is the single seam through which the ``nn``
    stack reaches the DAISM arithmetic: swapping the backend swaps the
    arithmetic of every layer.

    ``prepare(b)`` converts a static right-hand operand (typically a
    weight matrix) into the backend's internal form once, so repeated
    ``matmul`` calls against it skip the per-call front end entirely.
    The ``prepare_key`` property names that internal form: backends whose
    keys match produce interchangeable prepared operands (e.g. every
    ``ApproxMatmul`` config over bfloat16 shares the same packed planes),
    which lets callers cache one prepared tensor across backends.
    """

    name = "abstract"

    def matmul(self, a: np.ndarray, b) -> np.ndarray:
        """Product of ``a`` and ``b`` under this backend's arithmetic."""
        raise NotImplementedError

    def prepare(self, b: np.ndarray):
        """Pre-convert a static ``(K, N)`` operand; identity by default."""
        return b

    @property
    def prepare_key(self) -> str:
        """Cache key identifying the representation ``prepare`` produces."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class ExactMatmul(MatmulBackend):
    """Plain float32 matmul — the paper's exact baseline.

    Stateless; both operands are cast to float32 and multiplied with
    ``numpy.matmul``.  Batched inputs are flattened into the row
    dimension so the result is bit-identical to the 2-D call.
    """

    name = "exact_float32"

    def matmul(self, a: np.ndarray, b) -> np.ndarray:
        """Exact float32 product (batched inputs flattened row-wise)."""
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        flat, batch = _flatten_batch(a)
        out = flat @ b
        return out.reshape(*batch, -1) if batch else out

    def prepare(self, b: np.ndarray) -> np.ndarray:
        """Cast once to float32 (the backend's internal form)."""
        return np.asarray(b, dtype=np.float32)

    @property
    def prepare_key(self) -> str:  # type: ignore[override]
        """Dense float32 operands; not shared with the packed backends."""
        return "dense_float32"


@dataclasses.dataclass
class QuantizedMatmul(MatmulBackend):
    """Quantise operands to ``fmt``, then multiply exactly.

    Separates the error due to the narrow datatype from the error due to
    the OR-approximation; used as an intermediate point in Fig. 4-style
    studies.  Prepared operands are packed tensors whose cached dense
    form is read back, so they interoperate with ``ApproxMatmul`` caches
    of the same format.
    """

    fmt: FloatFormat = FLOAT32

    @property
    def name(self) -> str:  # type: ignore[override]
        """Backend label, e.g. ``quantized_bfloat16``."""
        return f"quantized_{self.fmt.name}"

    def _dense(self, x, side: str) -> np.ndarray:
        if isinstance(x, PackedTensor):
            if x.fmt != self.fmt:
                raise ValueError(
                    f"packed operand {side} is {x.fmt.name}, backend expects {self.fmt.name}"
                )
            return x.dense()
        return quantize(x, self.fmt)

    def matmul(self, a, b) -> np.ndarray:
        """Exact product of the ``fmt``-quantised operands."""
        aq = self._dense(a, "a")
        bq = self._dense(b, "b")
        flat, batch = _flatten_batch(aq)
        out = flat @ bq
        return out.reshape(*batch, -1) if batch else out

    def prepare(self, b: np.ndarray) -> PackedTensor:
        """Quantise + decompose a static operand once (see ``pack``)."""
        return b if isinstance(b, PackedTensor) else pack(b, self.fmt)

    @property
    def prepare_key(self) -> str:  # type: ignore[override]
        """Packed-plane form, shared with ``ApproxMatmul`` of the same ``fmt``."""
        return f"packed_{self.fmt.name}"


@dataclasses.dataclass
class ApproxMatmul(MatmulBackend):
    """Full DAISM arithmetic: quantise + approximate products.

    Parameters
    ----------
    fmt:
        Floating point format operands are quantised to (the paper's
        headline configuration uses bfloat16).
    config:
        Multiplier configuration (e.g. ``PC3_TR``).
    k_chunk:
        Optional K-dimension tile size for :func:`approx_matmul`'s
        accumulation loop; ``None`` lets the kernel pick.
    """

    fmt: FloatFormat
    config: MultiplierConfig
    k_chunk: int | None = None

    @property
    def name(self) -> str:  # type: ignore[override]
        """Backend label, e.g. ``approx_bfloat16_PC3_tr``."""
        return f"approx_{self.fmt.name}_{self.config.name}"

    def matmul(self, a, b) -> np.ndarray:
        """DAISM approximate product (see :func:`approx_matmul`)."""
        return approx_matmul(a, b, self.fmt, self.config, k_chunk=self.k_chunk)

    def prepare(self, b: np.ndarray) -> PackedTensor:
        """Quantise + decompose a static operand once (see ``pack``)."""
        return b if isinstance(b, PackedTensor) else pack(b, self.fmt)

    @property
    def prepare_key(self) -> str:  # type: ignore[override]
        """Packed-plane form, shared with ``QuantizedMatmul`` of the same ``fmt``."""
        return f"packed_{self.fmt.name}"
