"""Approximate GEMM built on the in-SRAM approximate multiplier.

On the accelerator, a GEMM is a stream of approximate scalar products that
a conventional accumulator sums (Sec. IV-A: SRAM rows produce products,
the adder at the bottom accumulates).  This module reproduces exactly
that: elementwise approximate FP products, exact accumulation in float32.

Three backends with a common ``matmul`` interface let the numpy DNN stack
(:mod:`repro.nn`) swap arithmetic without touching model code:

* :class:`ExactMatmul` — plain float32 ``A @ B`` (the paper's baseline);
* :class:`QuantizedMatmul` — quantise to a format, then exact products
  (isolates quantisation error from approximation error);
* :class:`ApproxMatmul` — quantise and run every product through the
  approximate multiplier (the DAISM datapath).

The approximate path decomposes both operands once and processes the
reduction dimension in chunks, so memory stays bounded while the LUT
gather stays fully vectorised.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..formats.floatfmt import FLOAT32, FloatFormat, compose, decompose, quantize
from .config import MultiplierConfig
from .fp_mul import _normalise, significand_product

__all__ = [
    "approx_matmul",
    "MatmulBackend",
    "ExactMatmul",
    "QuantizedMatmul",
    "ApproxMatmul",
]


def _default_chunk(m: int, n: int, budget_elems: int = 1 << 22) -> int:
    """Reduction-chunk size keeping the (m, chunk, n) block under budget."""
    per_k = max(1, m * n)
    return max(1, budget_elems // per_k)


def approx_matmul(
    a: np.ndarray,
    b: np.ndarray,
    fmt: FloatFormat,
    config: MultiplierConfig,
    k_chunk: int | None = None,
) -> np.ndarray:
    """``a @ b`` with every scalar product computed approximately.

    Parameters
    ----------
    a:
        ``(M, K)`` float array (quantised to ``fmt`` internally).
    b:
        ``(K, N)`` float array.
    fmt:
        Operand floating point format (e.g. bfloat16).
    config:
        Multiplier configuration (Table I).
    k_chunk:
        Reduction chunk size; defaults to a memory-bounded choice.

    Returns
    -------
    ``(M, N)`` float32 result, accumulated exactly in float32.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch for matmul: {a.shape} @ {b.shape}")
    m, k = a.shape
    _, n = b.shape
    if k_chunk is None:
        k_chunk = _default_chunk(m, n)

    aq = quantize(a, fmt)
    bq = quantize(b, fmt)
    sa, ea, ma = decompose(aq, fmt)
    sb, eb, mb = decompose(bq, fmt)
    bits = fmt.significand_bits

    out = np.zeros((m, n), dtype=np.float32)
    for start in range(0, k, k_chunk):
        stop = min(k, start + k_chunk)
        mx = ma[:, start:stop, None]
        my = mb[None, start:stop, :]
        ex = ea[:, start:stop, None].astype(np.int64)
        ey = eb[None, start:stop, :].astype(np.int64)
        sx = sa[:, start:stop, None]
        sy = sb[None, start:stop, :]

        product = significand_product(mx, my, bits, config)
        zero = (mx == 0) | (my == 0)
        sig, exp = _normalise(
            np.where(zero, np.uint64(1) << np.uint64(2 * bits - 2 if not config.truncated else bits - 2), product),
            ex + ey,
            bits,
            config.truncated,
        )
        values = compose(sx ^ sy, exp, sig, fmt)
        values = np.where(zero, np.float32(0.0), values)
        out += values.sum(axis=1, dtype=np.float32)
    return out


class MatmulBackend:
    """Interface: a named object computing ``matmul(a, b) -> (M, N)``.

    ``a`` is ``(M, K)`` and ``b`` is ``(K, N)``; implementations return a
    float32 ``(M, N)`` product.  The ``name`` attribute labels result
    columns in the accuracy studies.  This is the single seam through
    which the ``nn`` stack reaches the DAISM arithmetic: swapping the
    backend swaps the arithmetic of every layer.
    """

    name = "abstract"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class ExactMatmul(MatmulBackend):
    """Plain float32 matmul — the paper's exact baseline.

    Stateless; both operands are cast to float32 and multiplied with
    ``numpy.matmul``.
    """

    name = "exact_float32"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.asarray(a, dtype=np.float32) @ np.asarray(b, dtype=np.float32)


@dataclasses.dataclass
class QuantizedMatmul(MatmulBackend):
    """Quantise operands to ``fmt``, then multiply exactly.

    Separates the error due to the narrow datatype from the error due to
    the OR-approximation; used as an intermediate point in Fig. 4-style
    studies.
    """

    fmt: FloatFormat = FLOAT32

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"quantized_{self.fmt.name}"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return quantize(a, self.fmt) @ quantize(b, self.fmt)


@dataclasses.dataclass
class ApproxMatmul(MatmulBackend):
    """Full DAISM arithmetic: quantise + approximate products.

    Parameters
    ----------
    fmt:
        Floating point format operands are quantised to (the paper's
        headline configuration uses bfloat16).
    config:
        Multiplier configuration (e.g. ``PC3_TR``).
    k_chunk:
        Optional K-dimension tile size for :func:`approx_matmul`'s
        accumulation loop; ``None`` lets the kernel pick.
    """

    fmt: FloatFormat
    config: MultiplierConfig
    k_chunk: int | None = None

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"approx_{self.fmt.name}_{self.config.name}"

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return approx_matmul(a, b, self.fmt, self.config, k_chunk=self.k_chunk)
