"""Approximate GEMM built on the in-SRAM approximate multiplier.

On the accelerator, a GEMM is a stream of approximate scalar products that
a conventional accumulator sums (Sec. IV-A: SRAM rows produce products,
the adder at the bottom accumulates).  This module reproduces exactly
that: elementwise approximate FP products, exact accumulation in float32.

Three backends with a common ``matmul`` interface let the numpy DNN stack
(:mod:`repro.nn`) swap arithmetic without touching model code:

* :class:`ExactMatmul` — plain float32 ``A @ B`` (the paper's baseline);
* :class:`QuantizedMatmul` — quantise to a format, then exact products
  (isolates quantisation error from approximation error);
* :class:`ApproxMatmul` — quantise and run every product through the
  approximate multiplier (the DAISM datapath).

Operands flow through :class:`~repro.formats.packed.PackedTensor`: each
side is quantised and decomposed exactly once per tensor (mirroring the
one-time SRAM write of the paper's datapath), and pre-packed operands —
built via ``MatmulBackend.prepare`` — skip that front end entirely.  All
backends additionally accept stacked ``(B, M, K) @ (K, N)`` inputs,
flattening the batch into the row dimension so a whole batch runs as one
GEMM with bit-identical per-sample results.

The arithmetic itself lives in the kernel registry of
:mod:`repro.core.kernels`: the default ``float_table`` kernel collapses
the whole normalise+compose back end into one float32 value-table gather
plus two scale multiplies (bit-identical to the scalar reference), and
callers can opt into alternatives — including the ``blas_factored``
exact+correction fast path — by name through ``approx_matmul``'s
``kernel`` argument or the backends' ``kernel`` field.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..formats.floatfmt import FLOAT32, FloatFormat, quantize
from ..formats.packed import PackedTensor, pack
from .config import MultiplierConfig
from .kernels import default_k_chunk, select_kernel
from .router import route_kernel

__all__ = [
    "approx_matmul",
    "MatmulBackend",
    "ExactMatmul",
    "QuantizedMatmul",
    "ApproxMatmul",
]


def _as_packed(x: np.ndarray | PackedTensor, fmt: FloatFormat, side: str) -> PackedTensor:
    """Pack a float operand, or validate an already-packed one."""
    if isinstance(x, PackedTensor):
        if x.fmt != fmt:
            raise ValueError(
                f"packed operand {side} is {x.fmt.name}, matmul expects {fmt.name}"
            )
        return x
    return pack(x, fmt)


def approx_matmul(
    a: np.ndarray | PackedTensor,
    b: np.ndarray | PackedTensor,
    fmt: FloatFormat,
    config: MultiplierConfig,
    k_chunk: int | None = None,
    kernel: str | None = None,
) -> np.ndarray:
    """``a @ b`` with every scalar product computed approximately.

    Parameters
    ----------
    a:
        ``(M, K)`` or batched ``(B, M, K)`` float array, or an equally
        shaped :class:`~repro.formats.packed.PackedTensor`.  Float inputs
        are quantised to ``fmt`` internally (once); packed inputs are
        consumed as-is with zero re-quantise/decompose work.
    b:
        ``(K, N)`` float array or ``PackedTensor``.
    fmt:
        Operand floating point format (e.g. bfloat16).  Packed operands
        must have been packed to the same format.
    config:
        Multiplier configuration (Table I).
    k_chunk:
        Reduction chunk size; defaults to a memory-bounded choice
        computed from the *total* row count, so a batched call is
        bit-identical to the same rows flattened into one 2-D GEMM.
    kernel:
        Registered kernel name (see :func:`repro.core.kernels.kernel_names`);
        ``None`` selects the bit-exact default for ``fmt``, ``"auto"``
        lets the certified tier router pick per shape (see
        :func:`repro.core.router.route_kernel`).

    Returns
    -------
    ``(M, N)`` (or ``(B, M, N)``) float32 result, accumulated exactly in
    float32.
    """
    pa = _as_packed(a, fmt, "a")
    pb = _as_packed(b, fmt, "b")
    if pa.ndim not in (2, 3) or pb.ndim != 2 or pa.shape[-1] != pb.shape[0]:
        raise ValueError(f"shape mismatch for matmul: {pa.shape} @ {pb.shape}")

    batched = pa.ndim == 3
    if batched:
        batch, m, k = pa.shape
        pa = pa.reshape(batch * m, k)
    rows, _ = pa.shape
    n = pb.shape[1]
    if k_chunk is None:
        k_chunk = default_k_chunk(rows, n)

    found = route_kernel(fmt, config, kernel, shape=(rows, pa.shape[1], n))
    out = found.run(pa, pb, config, k_chunk)
    if batched:
        return out.reshape(batch, m, n)
    return out


def _flatten_batch(a: np.ndarray) -> tuple[np.ndarray, tuple[int, ...] | None]:
    """Collapse a ``(B, M, K)`` operand to ``(B*M, K)``; 2-D passes through."""
    if a.ndim == 3:
        b, m, k = a.shape
        return a.reshape(b * m, k), (b, m)
    return a, None


class MatmulBackend:
    """Interface: a named object computing ``matmul(a, b) -> (M, N)``.

    ``a`` is ``(M, K)`` — or batched ``(B, M, K)``, returning
    ``(B, M, N)`` — and ``b`` is ``(K, N)``; implementations return a
    float32 product.  The ``name`` attribute labels result columns in the
    accuracy studies.  This is the single seam through which the ``nn``
    stack reaches the DAISM arithmetic: swapping the backend swaps the
    arithmetic of every layer.

    ``prepare(b)`` converts a static right-hand operand (typically a
    weight matrix) into the backend's internal form once, so repeated
    ``matmul`` calls against it skip the per-call front end entirely.
    The ``prepare_key`` property names that internal form: backends whose
    keys match produce interchangeable prepared operands (e.g. every
    ``ApproxMatmul`` config over bfloat16 shares the same packed planes),
    which lets callers cache one prepared tensor across backends.
    """

    name = "abstract"

    def matmul(self, a: np.ndarray, b) -> np.ndarray:
        """Product of ``a`` and ``b`` under this backend's arithmetic."""
        raise NotImplementedError

    def prepare(self, b: np.ndarray):
        """Pre-convert a static ``(K, N)`` operand; identity by default."""
        return b

    @property
    def prepare_key(self) -> str:
        """Cache key identifying the representation ``prepare`` produces."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class ExactMatmul(MatmulBackend):
    """Plain float32 matmul — the paper's exact baseline.

    Stateless; both operands are cast to float32 and multiplied with
    ``numpy.matmul``.  Batched inputs are flattened into the row
    dimension so the result is bit-identical to the 2-D call.
    """

    name = "exact_float32"

    def matmul(self, a: np.ndarray, b) -> np.ndarray:
        """Exact float32 product (batched inputs flattened row-wise)."""
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        flat, batch = _flatten_batch(a)
        out = flat @ b
        return out.reshape(*batch, -1) if batch else out

    def prepare(self, b: np.ndarray) -> np.ndarray:
        """Cast once to float32 (the backend's internal form)."""
        return np.asarray(b, dtype=np.float32)

    @property
    def prepare_key(self) -> str:  # type: ignore[override]
        """Dense float32 operands; not shared with the packed backends."""
        return "dense_float32"


@dataclasses.dataclass
class QuantizedMatmul(MatmulBackend):
    """Quantise operands to ``fmt``, then multiply exactly.

    Separates the error due to the narrow datatype from the error due to
    the OR-approximation; used as an intermediate point in Fig. 4-style
    studies.  Prepared operands are packed tensors whose cached dense
    form is read back, so they interoperate with ``ApproxMatmul`` caches
    of the same format.

    ``kernel=None`` (or ``"auto"`` — exact products have no faster
    certified tier than BLAS itself) multiplies the quantised dense
    values with ``numpy.matmul`` (BLAS).  A named kernel routes the
    products through the registered packed kernel with an *exact*
    significand multiplier (``config=None``) instead — the
    conventional-multiplier datapath, whose products are re-normalised
    to the format's significand width and summed in datapath order.
    Mainly useful for cross-validating kernels against the scalar
    reference.
    """

    fmt: FloatFormat = FLOAT32
    kernel: str | None = None

    @property
    def name(self) -> str:  # type: ignore[override]
        """Backend label, e.g. ``quantized_bfloat16``."""
        return f"quantized_{self.fmt.name}"

    def _dense(self, x, side: str) -> np.ndarray:
        if isinstance(x, PackedTensor):
            if x.fmt != self.fmt:
                raise ValueError(
                    f"packed operand {side} is {x.fmt.name}, backend expects {self.fmt.name}"
                )
            return x.dense()
        return quantize(x, self.fmt)

    def matmul(self, a, b) -> np.ndarray:
        """Exact product of the ``fmt``-quantised operands."""
        if self.kernel is not None and self.kernel != "auto":
            pa = _as_packed(a, self.fmt, "a")
            pb = _as_packed(b, self.fmt, "b")
            batched = pa.ndim == 3
            if batched:
                batch, m, k = pa.shape
                pa = pa.reshape(batch * m, k)
            rows, _ = pa.shape
            n = pb.shape[1]
            k_chunk = default_k_chunk(rows, n)
            out = select_kernel(self.fmt, None, self.kernel).run(pa, pb, None, k_chunk)
            return out.reshape(batch, m, n) if batched else out
        aq = self._dense(a, "a")
        bq = self._dense(b, "b")
        flat, batch = _flatten_batch(aq)
        out = flat @ bq
        return out.reshape(*batch, -1) if batch else out

    def prepare(self, b: np.ndarray) -> PackedTensor:
        """Quantise + decompose a static operand once (see ``pack``)."""
        return b if isinstance(b, PackedTensor) else pack(b, self.fmt)

    @property
    def prepare_key(self) -> str:  # type: ignore[override]
        """Packed-plane form, shared with ``ApproxMatmul`` of the same ``fmt``."""
        return f"packed_{self.fmt.name}"


@dataclasses.dataclass
class ApproxMatmul(MatmulBackend):
    """Full DAISM arithmetic: quantise + approximate products.

    Parameters
    ----------
    fmt:
        Floating point format operands are quantised to (the paper's
        headline configuration uses bfloat16).
    config:
        Multiplier configuration (e.g. ``PC3_TR``).
    k_chunk:
        Optional K-dimension tile size for :func:`approx_matmul`'s
        accumulation loop; ``None`` lets the kernel pick.
    kernel:
        Registered kernel name; ``None`` selects the bit-exact default
        tier (``float_table_native``/``float_table`` for tabulated
        widths).  ``"blas_factored"`` opts into the BLAS fast path with
        its documented parity tolerance (see
        :class:`repro.core.kernels.BlasFactoredKernel`); ``"auto"`` lets
        the certified tier router pick per shape
        (:func:`repro.core.router.route_kernel`).
    """

    fmt: FloatFormat
    config: MultiplierConfig
    k_chunk: int | None = None
    kernel: str | None = None

    @property
    def name(self) -> str:  # type: ignore[override]
        """Backend label, e.g. ``approx_bfloat16_PC3_tr``."""
        return f"approx_{self.fmt.name}_{self.config.name}"

    def matmul(self, a, b) -> np.ndarray:
        """DAISM approximate product (see :func:`approx_matmul`)."""
        return approx_matmul(
            a, b, self.fmt, self.config, k_chunk=self.k_chunk, kernel=self.kernel
        )

    def prepare(self, b: np.ndarray) -> PackedTensor:
        """Quantise + decompose a static operand once (see ``pack``)."""
        return b if isinstance(b, PackedTensor) else pack(b, self.fmt)

    @property
    def prepare_key(self) -> str:  # type: ignore[override]
        """Packed-plane form, shared with ``QuantizedMatmul`` of the same ``fmt``."""
        return f"packed_{self.fmt.name}"
