"""Vectorised (numpy) implementations of the approximate mantissa multiply.

Functionally identical to :mod:`repro.core.mantissa` but operating on whole
arrays of unsigned integers at once.  The bit loop runs ``bits`` iterations
of elementwise numpy ops regardless of array size, which makes bulk
evaluation (error sweeps, DNN inference) practical.

Widths up to 24 bits per operand are supported (48-bit products in a
uint64 accumulator) — enough for the float32 significand, the widest the
paper uses.
"""

from __future__ import annotations

import numpy as np

from .config import MultiplierConfig

__all__ = ["approx_multiply_array", "exact_multiply_array", "or_multiply_array"]

_MAX_BITS = 24


def _check_inputs(a: np.ndarray, b: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray]:
    if not 1 <= bits <= _MAX_BITS:
        raise ValueError(f"bits must be in [1, {_MAX_BITS}], got {bits}")
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    limit = np.uint64(1) << np.uint64(bits)
    if a.size and np.any(a >= limit):
        raise ValueError(f"multiplicand does not fit in {bits} bits")
    if b.size and np.any(b >= limit):
        raise ValueError(f"multiplier does not fit in {bits} bits")
    return a, b


def exact_multiply_array(a: np.ndarray, b: np.ndarray, bits: int) -> np.ndarray:
    """Exact elementwise product (uint64), the adder-tree reference.

    Parameters
    ----------
    a, b:
        Unsigned operand arrays (broadcastable, values ``< 2**bits``;
        validated).
    bits:
        Operand width in bits.
    """
    a, b = _check_inputs(a, b, bits)
    return a * b


def or_multiply_array(a: np.ndarray, b: np.ndarray, bits: int) -> np.ndarray:
    """FLA: bitwise OR of the partial products selected by ``b``'s bits.

    Vectorised :func:`repro.core.mantissa.or_multiply` — bit-for-bit
    identical results (pinned by tests).

    Parameters
    ----------
    a, b:
        Unsigned operand arrays (broadcastable, values ``< 2**bits``).
    bits:
        Operand width in bits.
    """
    a, b = _check_inputs(a, b, bits)
    acc = np.zeros(np.broadcast(a, b).shape, dtype=np.uint64)
    one = np.uint64(1)
    for i in range(bits):
        sel = (b >> np.uint64(i)) & one
        # sel * all-ones gives an all-ones mask exactly where the bit is set.
        mask = sel * np.uint64(0xFFFF_FFFF_FFFF_FFFF)
        acc |= (a << np.uint64(i)) & mask
    return acc


def approx_multiply_array(
    a: np.ndarray, b: np.ndarray, bits: int, config: MultiplierConfig
) -> np.ndarray:
    """Elementwise approximate product for any Table I configuration.

    Returns the ``2*bits``-wide product for untruncated configs, or the
    ``bits``-wide top half for truncated configs — the same convention as
    the scalar reference in :mod:`repro.core.mantissa`.
    """
    a, b = _check_inputs(a, b, bits)
    k = min(config.precomputed, bits)
    low = bits - k
    shift_bits = np.uint64(bits)
    one = np.uint64(1)

    acc = np.zeros(np.broadcast(a, b).shape, dtype=np.uint64)
    if k:
        top = (b >> np.uint64(low)) << np.uint64(low)
        exact_part = a * top
        acc |= (exact_part >> shift_bits) if config.truncated else exact_part

    for i in range(low):
        sel = (b >> np.uint64(i)) & one
        mask = sel * np.uint64(0xFFFF_FFFF_FFFF_FFFF)
        line = a << np.uint64(i)
        if config.truncated:
            line = line >> shift_bits
        acc |= line & mask
    return acc
