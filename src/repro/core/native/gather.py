"""The native gather-GEMM loop nest shared by the JIT and fallback paths.

One function, :func:`gather_gemm`, holds the whole algorithm: a
cache-blocked, K-chunked scalar loop nest over ``V0[ma, mb] * alpha *
beta`` with the same per-element range masks and the same float32
accumulation association as :class:`~repro.core.kernels.FloatTableKernel`
— sequential over each K-chunk, chunk partials added in order.  The
function body is written in the numba-compatible subset of python so the
*same source* runs two ways:

* with numba installed, :func:`jit_gather` compiles it once per process
  (``njit(parallel=True, cache=True)``, ``fastmath`` off — bit-exactness
  is the contract) and row blocks run multithreaded via ``prange``;
* without numba, :data:`HAVE_NUMBA` is false, ``prange`` degrades to
  ``range``, and the uncompiled body is still importable/callable — the
  parity suite executes it directly on tiny shapes, so even no-numba CI
  proves the algorithm byte-identical to ``float_table``.

The production no-numba path never runs the (slow) interpreted body:
:class:`~repro.core.kernels.NativeGatherKernel` delegates to
``float_table`` instead (see its docstring for the delegation rules).
"""

from __future__ import annotations

import math
import threading

import numpy as np

try:  # pragma: no cover - import probe; both arms covered across CI jobs
    import numba as _numba
    from numba import njit as _njit
    from numba import prange
except ImportError:  # pragma: no cover
    _numba = None
    _njit = None
    prange = range

#: Whether the numba JIT is importable in this process.  The *active*
#: switch (which also honours ``REPRO_DISABLE_NATIVE``) lives in
#: :func:`repro.core.native.native_active`.
HAVE_NUMBA = _numba is not None

__all__ = ["HAVE_NUMBA", "gather_gemm", "jit_gather", "numba_version"]


def numba_version() -> str | None:
    """The installed numba version string, or ``None`` when absent."""
    return getattr(_numba, "__version__", None) if HAVE_NUMBA else None


def gather_gemm(
    table,
    ma,
    alpha,
    mb_t,
    beta_t,
    k_chunk,
    row_block,
    f32_exact,
    needs_flush,
    needs_overflow,
    flush_t,
    inf_t,
):
    """Scalar gather GEMM: ``out[r, j] = sum_t V0[ma, mb] * alpha * beta``.

    Operands arrive pre-oriented for unit-stride inner loops: ``ma`` and
    ``alpha`` are the activation planes ``(m, k)``, ``mb_t``/``beta_t``
    the *transposed* weight planes ``(n, k)``.  The flag arguments are
    exactly ``FloatTableKernel._range_masks`` output with the two uint32
    thresholds re-expressed as float32 magnitudes (``flush_t``/``inf_t``)
    — bit and float comparison agree because no intermediate here can be
    NaN (scale planes are finite, zero operands carry ``±0.0`` scales).

    Accumulation order is the kernel contract: terms of one K-chunk sum
    sequentially into a float32 partial, partials add in chunk order.
    ``row_block`` only partitions the parallel loop — bit-neutral, like
    the numpy kernel's row blocking.
    """
    m, k = ma.shape
    n = mb_t.shape[0]
    out = np.zeros((m, n), dtype=np.float32)
    n_blocks = (m + row_block - 1) // row_block
    for blk in prange(n_blocks):
        r0 = blk * row_block
        r1 = min(m, r0 + row_block)
        for r in range(r0, r1):
            for j in range(n):
                acc = np.float32(0.0)
                c0 = 0
                while c0 < k:
                    c1 = min(k, c0 + k_chunk)
                    partial = np.float32(0.0)
                    for t in range(c0, c1):
                        v = table[ma[r, t], mb_t[j, t]]
                        if f32_exact:
                            v = np.float32(v * alpha[r, t])
                            v = np.float32(v * beta_t[j, t])
                        else:
                            s = np.float32(alpha[r, t] * beta_t[j, t])
                            v = np.float32(s * v)
                        if needs_flush and abs(v) < flush_t:
                            v = np.float32(math.copysign(0.0, v))
                        if needs_overflow and abs(v) >= inf_t:
                            v = np.float32(math.copysign(np.inf, v))
                        partial = np.float32(partial + v)
                    acc = np.float32(acc + partial)
                    c0 = c1
                out[r, j] = acc
    return out


_JIT_LOCK = threading.Lock()
_JIT_FN = None


def jit_gather():
    """The compiled :func:`gather_gemm`, or ``None`` without numba.

    Compiles lazily (first call pays the JIT) under a lock so parallel
    shard threads never race the compiler; ``cache=True`` persists the
    machine code next to the module, so repeat processes skip the
    compile.  ``fastmath`` stays off: reassociation would break the
    byte-parity contract with ``float_table``.
    """
    global _JIT_FN
    if not HAVE_NUMBA:
        return None
    with _JIT_LOCK:
        if _JIT_FN is None:
            _JIT_FN = _njit(parallel=True, fastmath=False, cache=True)(gather_gemm)
        return _JIT_FN
