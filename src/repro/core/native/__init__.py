"""Optional native (numba-JIT) kernel tier: availability and status.

The native tier is a strict accelerator — never a requirement.  Three
switches decide what actually runs:

* :func:`native_available` — is numba importable at all?
* ``REPRO_DISABLE_NATIVE=1`` — operator kill-switch; the tier reports
  itself inactive and every call falls back to ``float_table``.
* :func:`native_active` — the AND of the two: what
  ``select_kernel``/``exact_tier_name`` consult when picking the
  bit-exact default tier.

:func:`native_status` bundles all of it into one introspection dict
(mirroring ``table_cache_counters``-style reporting) that the serving
benches and the perf harness embed in their reports, so "which tier ran"
is always visible in recorded numbers.
"""

from __future__ import annotations

import os

from .gather import HAVE_NUMBA, gather_gemm, jit_gather, numba_version

__all__ = [
    "DISABLE_ENV",
    "HAVE_NUMBA",
    "gather_gemm",
    "jit_gather",
    "native_active",
    "native_available",
    "native_disabled",
    "native_status",
    "numba_version",
]

#: Environment kill-switch: any value other than empty/``0`` disables
#: the native tier even when numba is installed.
DISABLE_ENV = "REPRO_DISABLE_NATIVE"


def native_available() -> bool:
    """Whether the numba JIT backend is importable in this process."""
    return HAVE_NUMBA


def native_disabled() -> bool:
    """Whether the :data:`DISABLE_ENV` kill-switch is set."""
    return os.environ.get(DISABLE_ENV, "").strip() not in ("", "0")


def native_active() -> bool:
    """Whether the native tier actually runs (available and not disabled)."""
    return HAVE_NUMBA and not native_disabled()


def native_status() -> dict:
    """Introspection snapshot of the native tier.

    Keys: ``available`` (numba importable), ``disabled`` (kill-switch
    set), ``active`` (what will run), ``backend`` (``"numba-njit"`` or
    ``"numpy-fallback"``), ``numba_version``, and ``threads`` (numba's
    thread count, ``None`` on the fallback).  Cheap to call — it never
    triggers a JIT compile.
    """
    status = {
        "available": native_available(),
        "disabled": native_disabled(),
        "active": native_active(),
        "backend": "numba-njit" if native_active() else "numpy-fallback",
        "numba_version": numba_version(),
        "threads": None,
    }
    if status["active"]:  # pragma: no cover - exercised on numba CI only
        try:
            import numba

            status["threads"] = int(numba.get_num_threads())
        except Exception:
            pass
    return status
