"""The paper's primary contribution: the in-SRAM approximate multiplier.

Scalar reference models, vectorised kernels, lookup-table fast paths, the
floating point pipeline wrapped around the mantissa multiplier, and the
GEMM backends used by the DNN stack.
"""

from .config import (
    FLA,
    PC2,
    PC2_TR,
    PC3,
    PC3_TR,
    PC4,
    PC4_TR,
    MultiplierConfig,
    Scheme,
    all_configs,
    extended_configs,
    table1_rows,
)
from .error_bounds import truncation_extra_error, worst_case_relative_error
from .errors import ErrorStats, fp_error_stats, mantissa_error_stats
from .fp_mul import approx_fp_multiply, exact_fp_multiply, significand_product
from .gemm import ApproxMatmul, ExactMatmul, MatmulBackend, QuantizedMatmul, approx_matmul
from .kernels import (
    AutotuneResult,
    GemmKernel,
    UnknownKernelError,
    autotune_row_budget,
    exact_tier_name,
    get_kernel,
    kernel_names,
    kernel_tiers,
    register_kernel,
    select_kernel,
    shape_class,
    table_cache_counters,
)
from .native import native_active, native_available, native_status
from .router import (
    TierCertificate,
    TierDecision,
    autotune_tier,
    certify_fast_path,
    route_decision,
    route_kernel,
)
from .tune_cache import TuneCache, machine_fingerprint
from .related_work import (
    compressed_pp_multiply,
    compressed_pp_multiply_array,
    lower_part_or_multiply,
    lower_part_or_multiply_array,
)
from .mantissa import (
    approx_multiply,
    approx_multiply_truncated,
    exact_multiply,
    or_multiply,
)
from .tables import product_table, tabulated_multiply
from .vectorized import approx_multiply_array, exact_multiply_array, or_multiply_array

__all__ = [
    "FLA",
    "PC2",
    "PC3",
    "PC2_TR",
    "PC3_TR",
    "PC4",
    "PC4_TR",
    "MultiplierConfig",
    "Scheme",
    "all_configs",
    "extended_configs",
    "table1_rows",
    "truncation_extra_error",
    "worst_case_relative_error",
    "ErrorStats",
    "fp_error_stats",
    "mantissa_error_stats",
    "approx_fp_multiply",
    "exact_fp_multiply",
    "significand_product",
    "ApproxMatmul",
    "ExactMatmul",
    "MatmulBackend",
    "QuantizedMatmul",
    "approx_matmul",
    "AutotuneResult",
    "GemmKernel",
    "UnknownKernelError",
    "autotune_row_budget",
    "exact_tier_name",
    "get_kernel",
    "kernel_names",
    "kernel_tiers",
    "register_kernel",
    "select_kernel",
    "shape_class",
    "table_cache_counters",
    "native_active",
    "native_available",
    "native_status",
    "TierCertificate",
    "TierDecision",
    "autotune_tier",
    "certify_fast_path",
    "route_decision",
    "route_kernel",
    "TuneCache",
    "machine_fingerprint",
    "approx_multiply",
    "approx_multiply_truncated",
    "exact_multiply",
    "or_multiply",
    "compressed_pp_multiply",
    "compressed_pp_multiply_array",
    "lower_part_or_multiply",
    "lower_part_or_multiply_array",
    "product_table",
    "tabulated_multiply",
    "approx_multiply_array",
    "exact_multiply_array",
    "or_multiply_array",
]
