"""On-disk persistence for autotuned kernel choices.

``autotune_row_budget`` and the tier router both make machine-specific
choices (a row-block budget, a kernel tier) that historically lived in
process-local dicts and were re-measured by every process.  This module
persists them: a small JSON document keyed by ``(kernel, shape_class)``
holding the chosen budget, chosen tier, and the timing table behind the
choice.

Two invalidation mechanisms keep stale choices from leaking:

* a **machine fingerprint** (platform, python, numpy, CPU count, and
  whether the native tier is active) — a cache written on one machine
  or environment is silently discarded on another;
* a **schema version** (:data:`TUNE_CACHE_SCHEMA`) — bumped whenever
  the entry layout changes, discarding all older files.

Both discard paths count as an *invalidation* in :meth:`TuneCache.counters`;
lookups count hits and misses, so tests (and the perf harness) can prove
exactly when measurement was skipped.  Writes are atomic
(temp-file + ``os.replace``), and all state is guarded by a lock.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import tempfile
import threading

import numpy as np

from .native import native_active

__all__ = [
    "TUNE_CACHE_SCHEMA",
    "TuneCache",
    "default_cache_path",
    "machine_fingerprint",
]

#: Entry-layout version.  Bump whenever the meaning of stored entries
#: changes; every existing cache file is then invalidated on load.
TUNE_CACHE_SCHEMA = 1


def machine_fingerprint() -> str:
    """Short digest of everything a tuned choice depends on.

    Covers the hardware/interpreter surface (machine, OS, python and
    numpy versions, CPU count) plus whether the native tier is active —
    a budget tuned for the numba tier must not be replayed onto the
    numpy fallback or vice versa.
    """
    parts = (
        platform.machine(),
        platform.system(),
        platform.python_version(),
        np.__version__,
        str(os.cpu_count() or 1),
        "native" if native_active() else "numpy",
    )
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def default_cache_path() -> str:
    """Resolve the cache file path from the environment.

    ``$REPRO_TUNE_CACHE`` (explicit file) wins; else the file lives
    under ``$REPRO_CACHE_DIR`` (the repository's cache-root convention),
    else under ``~/.cache/repro-daism/``.
    """
    explicit = os.environ.get("REPRO_TUNE_CACHE")
    if explicit:
        return explicit
    base = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-daism"
    )
    return os.path.join(base, "tune_cache.json")


class TuneCache:
    """Persistent ``(kernel, shape_class) -> tuned choice`` store.

    Entries are plain dicts with any of ``budget`` (int, row-block
    elements), ``tier`` (kernel name the router chose), and
    ``timings_ms`` (the measurement behind the choice).  ``get`` returns
    a copy or ``None``; ``put`` merges keys into the existing entry and
    writes the file through atomically.  A file whose schema or machine
    fingerprint mismatches is discarded wholesale on load (counted as an
    invalidation), so corrupt or foreign caches degrade to a cold start,
    never to wrong choices.
    """

    def __init__(self, path: str | None = None, fingerprint: str | None = None):
        #: Backing file path (parent directories created on first write).
        self.path = str(path or default_cache_path())
        #: Fingerprint entries are bound to (defaults to this machine's).
        self.fingerprint = fingerprint or machine_fingerprint()
        self._lock = threading.Lock()
        self._counters = {"hits": 0, "misses": 0, "invalidations": 0}
        self._entries = self._load()

    def _load(self) -> dict:
        try:
            with open(self.path, encoding="utf-8") as fh:
                raw = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict):
            return {}
        if (
            raw.get("schema") != TUNE_CACHE_SCHEMA
            or raw.get("fingerprint") != self.fingerprint
        ):
            self._counters["invalidations"] += 1
            return {}
        entries = raw.get("entries")
        return dict(entries) if isinstance(entries, dict) else {}

    @staticmethod
    def _key(kernel: str, shape_cls: str) -> str:
        return f"{kernel}::{shape_cls}"

    def get(self, kernel: str, shape_cls: str) -> dict | None:
        """Cached entry for ``(kernel, shape_cls)``, or ``None`` (a miss)."""
        with self._lock:
            entry = self._entries.get(self._key(kernel, shape_cls))
            if entry is None:
                self._counters["misses"] += 1
                return None
            self._counters["hits"] += 1
            return dict(entry)

    def put(
        self,
        kernel: str,
        shape_cls: str,
        *,
        budget: int | None = None,
        tier: str | None = None,
        timings_ms: dict | None = None,
    ) -> None:
        """Merge a tuned choice into the entry and persist the file."""
        fresh: dict = {}
        if budget is not None:
            fresh["budget"] = int(budget)
        if tier is not None:
            fresh["tier"] = str(tier)
        if timings_ms:
            fresh["timings_ms"] = {str(k): float(v) for k, v in timings_ms.items()}
        if not fresh:
            return
        key = self._key(kernel, shape_cls)
        with self._lock:
            merged = dict(self._entries.get(key) or {})
            merged.update(fresh)
            self._entries[key] = merged
            self._write()

    def _write(self) -> None:
        payload = {
            "schema": TUNE_CACHE_SCHEMA,
            "fingerprint": self.fingerprint,
            "entries": self._entries,
        }
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def counters(self) -> dict:
        """Snapshot of the hit/miss/invalidation counters."""
        with self._lock:
            return dict(self._counters)

    def entries(self) -> dict:
        """Copy of all live entries (for reports and tests)."""
        with self._lock:
            return {k: dict(v) for k, v in self._entries.items()}
