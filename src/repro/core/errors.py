"""Error metrics for the approximate multipliers.

Used by the accuracy analyses and the ablation benchmark: the paper's
Sec. V-D argues PC3 is the best configuration partly because it "has
better accuracy" — in distribution, which these helpers quantify.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..formats.floatfmt import FloatFormat
from .config import MultiplierConfig
from .fp_mul import approx_fp_multiply, exact_fp_multiply
from .vectorized import approx_multiply_array, exact_multiply_array

__all__ = [
    "ErrorStats",
    "relative_errors",
    "mantissa_error_stats",
    "fp_error_stats",
    "exhaustive_mantissa_errors",
]


@dataclasses.dataclass(frozen=True)
class ErrorStats:
    """Summary statistics of a relative error distribution.

    All values are relative errors ``(exact - approx) / exact``; the
    OR-approximation never overshoots, so they are non-negative for the
    mantissa path.
    """

    mean: float
    std: float
    max: float
    p50: float
    p99: float
    exact_fraction: float

    @classmethod
    def from_errors(cls, errors: np.ndarray) -> "ErrorStats":
        """Summarise a (non-empty) array of relative errors."""
        errors = np.asarray(errors, dtype=np.float64).ravel()
        if errors.size == 0:
            raise ValueError("cannot summarise an empty error array")
        return cls(
            mean=float(errors.mean()),
            std=float(errors.std()),
            max=float(errors.max()),
            p50=float(np.percentile(errors, 50)),
            p99=float(np.percentile(errors, 99)),
            exact_fraction=float(np.mean(errors == 0.0)),
        )


def relative_errors(exact: np.ndarray, approx: np.ndarray) -> np.ndarray:
    """Elementwise ``(exact - approx) / exact`` with exact zeros skipped."""
    exact = np.asarray(exact, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    nonzero = exact != 0
    return (exact[nonzero] - approx[nonzero]) / exact[nonzero]


def mantissa_error_stats(
    bits: int,
    config: MultiplierConfig,
    samples: int = 1 << 16,
    seed: int = 0,
    fp_range: bool = True,
) -> ErrorStats:
    """Error statistics of the integer mantissa multiplier.

    ``fp_range=True`` restricts operands to significands with the MSB set
    (the implicit leading one of normalised floats), which is the operating
    range on the accelerator.
    """
    rng = np.random.default_rng(seed)
    lo = (1 << (bits - 1)) if fp_range else 0
    hi = 1 << bits
    a = rng.integers(lo, hi, size=samples, dtype=np.uint64)
    b = rng.integers(lo, hi, size=samples, dtype=np.uint64)
    exact = exact_multiply_array(a, b, bits).astype(np.float64)
    approx = approx_multiply_array(a, b, bits, config).astype(np.float64)
    if config.truncated:
        approx = approx * float(1 << bits)
    return ErrorStats.from_errors(relative_errors(exact, approx))


def exhaustive_mantissa_errors(
    bits: int, config: MultiplierConfig, fp_range: bool = True
) -> np.ndarray:
    """Full relative-error matrix over every operand pair (small ``bits``)."""
    if bits > 12:
        raise ValueError("exhaustive sweep is limited to bits <= 12")
    lo = (1 << (bits - 1)) if fp_range else 0
    operands = np.arange(lo, 1 << bits, dtype=np.uint64)
    a = operands[:, None]
    b = operands[None, :]
    exact = exact_multiply_array(a, b, bits).astype(np.float64)
    approx = approx_multiply_array(a, b, bits, config).astype(np.float64)
    if config.truncated:
        approx = approx * float(1 << bits)
    safe = np.where(exact == 0, 1.0, exact)
    errs = np.where(exact == 0, 0.0, (exact - approx) / safe)
    return errs


def fp_error_stats(
    fmt: FloatFormat,
    config: MultiplierConfig,
    samples: int = 1 << 16,
    seed: int = 0,
    scale: float = 1.0,
) -> ErrorStats:
    """End-to-end FP product error statistics on random normal operands.

    Parameters
    ----------
    fmt:
        Floating point format both operands are quantised to.
    config:
        Multiplier configuration under test.
    samples:
        Number of operand pairs drawn.
    seed:
        RNG seed (results are deterministic per seed).
    scale:
        Standard deviation of the normal operand distribution.
    """
    rng = np.random.default_rng(seed)
    x = (rng.standard_normal(samples) * scale).astype(np.float32)
    y = (rng.standard_normal(samples) * scale).astype(np.float32)
    exact = exact_fp_multiply(x, y, fmt).astype(np.float64)
    approx = approx_fp_multiply(x, y, fmt, config).astype(np.float64)
    nonzero = exact != 0
    errs = np.abs(exact[nonzero] - approx[nonzero]) / np.abs(exact[nonzero])
    return ErrorStats.from_errors(errs)
