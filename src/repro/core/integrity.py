"""Kernel-state integrity: checksums, canary probes, heal-or-demote.

The serving stack keeps long-lived arithmetic state in process memory —
the cached product tables (:mod:`repro.core.kernels`) and pre-packed
weight planes — and the byte-exactness contract silently dies the
moment any of it is corrupted (an SRAM-style bit flip turns into wrong
logits, not a crash).  This module makes corruption a *detected,
recoverable* event:

* **per-table checksums** — every table registered at build time (the
  ``prepare()``/first-touch path in :func:`repro.core.kernels._cached`)
  records a SHA-256 over its bytes plus the deterministic rebuild
  closure that produced it;
* **canary probes** — a pinned GEMM per ``(fmt, config, kernel)``
  whose byte-exact output digest is recorded when the state is known
  healthy (plan compile / worker boot) and re-checked periodically;
* **heal** — a checksum or canary mismatch rebuilds the table from
  source (tables are pure functions of ``(bits, config)``) and
  re-verifies;
* **demote** — corruption that *recurs* on the same table marks its
  ``(significand bits, config)`` as demoted; the tier router
  (:func:`repro.core.router.route_decision`) then pins ``"auto"`` to
  the bit-exact tier for that config and a structured
  :class:`IntegrityError` event records the degradation.

Everything is in-process state: fleet workers each run their own
registry (a worker's ``("health",)`` message triggers
:func:`check_and_heal` there), and the parent mirrors demotions into
its deployment snapshots so respawned workers inherit them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time

import numpy as np

__all__ = [
    "IntegrityError",
    "IntegrityEvent",
    "checksum_value",
    "register_table",
    "register_canary",
    "registered_tables",
    "registered_canaries",
    "verify_tables",
    "verify_canaries",
    "check_and_heal",
    "is_demoted",
    "demote",
    "demoted_keys",
    "integrity_events",
    "corruption_counts",
    "reset_integrity",
]


def checksum_value(value) -> str:
    """SHA-256 over an array (or nested arrays) — dtype, shape and bytes.

    Handles the cache's value shapes: a bare ``ndarray``, the factored
    ``(U, V, info)`` tuple (arrays hashed in order, the info dict by its
    sorted item repr), and falls back to ``repr`` for anything else.
    """
    h = hashlib.sha256()
    _feed(h, value)
    return h.hexdigest()


def _feed(h, value) -> None:
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(value, (tuple, list)):
        for item in value:
            _feed(h, item)
    elif isinstance(value, dict):
        h.update(repr(sorted(value.items(), key=lambda kv: repr(kv[0]))).encode())
    else:
        h.update(repr(value).encode())


@dataclasses.dataclass(frozen=True)
class IntegrityEvent:
    """One detection/recovery/degradation event, structured for wires."""

    kind: str  #: ``table_corruption`` | ``canary_mismatch`` | ``demotion``
    site: str  #: table key / canary key, stringified
    action: str  #: ``rebuilt`` | ``demoted`` | ``detected``
    detail: str = ""

    def as_dict(self) -> dict:
        return dataclasses.asdict(self) | {"error": "integrity"}


class IntegrityError(RuntimeError):
    """Corruption recurred past the heal budget; carries the event.

    Emitted as a structured *event* on the healing path (recorded, the
    tier demotes, serving continues) and raised only by callers that opt
    into strict mode.
    """

    def __init__(self, event: IntegrityEvent):
        self.event = event
        super().__init__(f"integrity: {event.kind} at {event.site} -> {event.action}")

    def as_dict(self) -> dict:
        return self.event.as_dict()


@dataclasses.dataclass
class _TableRecord:
    digest: str
    rebuild: object  # zero-arg closure returning a fresh table


@dataclasses.dataclass
class _CanaryRecord:
    fmt: object
    config: object
    kernel: object
    expected: str


_LOCK = threading.RLock()
_TABLES: dict[tuple, _TableRecord] = {}
_CANARIES: dict[tuple, _CanaryRecord] = {}
_CORRUPTIONS: dict[tuple, int] = {}
_DEMOTED: set[tuple] = set()
_EVENTS: list[IntegrityEvent] = []

#: Distinct corruption detections on one site before the router demotes
#: its config to the bit-exact tier (the "corruption recurs" policy).
DEMOTE_AFTER = 2


# --------------------------------------------------------------------------
# Registration (called from the prepare()/build path)
# --------------------------------------------------------------------------


def register_table(key: tuple, value, rebuild) -> None:
    """Record a freshly built table's checksum + rebuild closure.

    Called by the kernel table cache on every build (miss).  Re-building
    after a heal re-registers the same digest — tables are pure
    functions of their key.
    """
    digest = checksum_value(value)
    with _LOCK:
        _TABLES[key] = _TableRecord(digest=digest, rebuild=rebuild)


def _probe_digest(fmt, config, kernel) -> str:
    """Run the pinned canary GEMM and digest its output bytes.

    The probe is tiny (8x32 @ 32x16, fixed seed) and exercises the full
    gather path — table lookups included — so a flipped table bit that
    lands in the probed index set changes the digest.  Deterministic by
    the bit-exactness contract (and deterministic within a process even
    for the non-bit-exact factored tiers).
    """
    from ..core.kernels import default_k_chunk
    from ..formats.packed import pack

    rng = np.random.default_rng(0xC0FFEE)
    a = rng.standard_normal((8, 32)).astype(np.float32)
    b = rng.standard_normal((32, 16)).astype(np.float32)
    out = kernel.run(pack(a, fmt), pack(b, fmt), config, default_k_chunk(8, 16))
    return checksum_value(out)


def register_canary(fmt, config, kernel) -> str:
    """Record the healthy output digest of the pinned GEMM (idempotent).

    Called at plan compile time (``_resolve_strategy``) and on worker
    boot — both moments the tables were just built, i.e. known healthy.
    Returns the expected digest.
    """
    key = (fmt.name, config.name if config is not None else None, kernel.name)
    with _LOCK:
        record = _CANARIES.get(key)
        if record is not None:
            return record.expected
    expected = _probe_digest(fmt, config, kernel)
    with _LOCK:
        record = _CANARIES.setdefault(
            key, _CanaryRecord(fmt=fmt, config=config, kernel=kernel, expected=expected)
        )
        return record.expected


def registered_tables() -> list[tuple]:
    """Keys of every checksummed table."""
    with _LOCK:
        return list(_TABLES)


def registered_canaries() -> list[tuple]:
    """Keys of every registered canary probe."""
    with _LOCK:
        return list(_CANARIES)


# --------------------------------------------------------------------------
# Verification + healing
# --------------------------------------------------------------------------


def _demote_key_for_table(key: tuple) -> tuple:
    # Table cache keys are (bits, scheme, truncated, kind); demotion is
    # per (bits, scheme, truncated) — every kind shares the config.
    return tuple(key[:3])


def _note_corruption(key: tuple, kind: str, site: str) -> IntegrityEvent | None:
    """Count one detection; returns the demotion event if the budget blew."""
    _CORRUPTIONS[key] = _CORRUPTIONS.get(key, 0) + 1
    _EVENTS.append(IntegrityEvent(kind=kind, site=site, action="rebuilt"))
    if _CORRUPTIONS[key] >= DEMOTE_AFTER:
        if kind == "table_corruption":
            demote_key = _demote_key_for_table(key)
        else:  # canary key: (fmt_name, config_name, kernel_name)
            record = _CANARIES[key]
            demote_key = _demote_key_for_canary(record)
        if demote_key not in _DEMOTED:
            _DEMOTED.add(demote_key)
            event = IntegrityEvent(
                kind="demotion",
                site=site,
                action="demoted",
                detail=f"corruption recurred {_CORRUPTIONS[key]}x; "
                "router pinned to the bit-exact tier",
            )
            _EVENTS.append(event)
            return event
    return None


def _demote_key_for_canary(record: _CanaryRecord) -> tuple:
    config = record.config
    if config is None:
        return (record.fmt.significand_bits, None, False)
    return (record.fmt.significand_bits, config.scheme, config.truncated)


def verify_tables(heal: bool = True) -> dict:
    """Re-checksum every registered table against the live cache.

    A mismatch is *always* detected (the digest covers every byte).
    With ``heal`` the table is rebuilt from source and reinstalled in
    the cache; recurring corruption demotes (see :data:`DEMOTE_AFTER`).
    """
    from . import kernels

    corrupted: list[tuple] = []
    demotions: list[dict] = []
    with _LOCK:
        records = list(_TABLES.items())
    for key, record in records:
        live = kernels.peek_table(key)
        if live is None:
            continue  # cache was cleared externally; nothing to verify
        if checksum_value(live) == record.digest:
            continue
        corrupted.append(key)
        with _LOCK:
            event = _note_corruption(key, "table_corruption", str(key))
            if event is not None:
                demotions.append(event.as_dict())
        if heal:
            fresh = record.rebuild()
            kernels.install_table(key, fresh)
            with _LOCK:
                _TABLES[key] = _TableRecord(
                    digest=checksum_value(fresh), rebuild=record.rebuild
                )
    return {
        "tables_checked": len(records),
        "corrupted_tables": [str(k) for k in corrupted],
        "healed_tables": len(corrupted) if heal else 0,
        "demotions": demotions,
    }


def verify_canaries(heal: bool = True) -> dict:
    """Re-run every canary probe against its recorded healthy digest.

    On mismatch the table layer is healed first (the usual cause) and
    the probe retried; a mismatch that *survives* healing counts as
    recurred corruption and demotes immediately — the kernel's output
    is wrong for reasons a rebuild did not fix.
    """
    with _LOCK:
        records = list(_CANARIES.items())
    failures: list[str] = []
    persistent: list[str] = []
    demotions: list[dict] = []
    for key, record in records:
        got = _probe_digest(record.fmt, record.config, record.kernel)
        if got == record.expected:
            continue
        failures.append(str(key))
        if not heal:
            continue
        verify_tables(heal=True)
        got = _probe_digest(record.fmt, record.config, record.kernel)
        with _LOCK:
            if got == record.expected:
                _EVENTS.append(
                    IntegrityEvent(
                        kind="canary_mismatch", site=str(key), action="rebuilt"
                    )
                )
            else:
                persistent.append(str(key))
                demote_key = _demote_key_for_canary(record)
                _DEMOTED.add(demote_key)
                event = IntegrityEvent(
                    kind="canary_mismatch",
                    site=str(key),
                    action="demoted",
                    detail="probe still wrong after table heal",
                )
                _EVENTS.append(event)
                demotions.append(event.as_dict())
    return {
        "canaries_checked": len(records),
        "canary_failures": failures,
        "persistent_failures": persistent,
        "demotions": demotions,
    }


def check_and_heal() -> dict:
    """One full integrity round: tables, then canaries; heals in place.

    The worker ``("health",)`` message and the fleet's periodic health
    monitor run exactly this.  Returns a merged, wire-ready report.
    """
    t0 = time.perf_counter()
    tables = verify_tables(heal=True)
    canaries = verify_canaries(heal=True)
    report = {**tables, **canaries}
    report["demotions"] = tables["demotions"] + canaries["demotions"]
    report["demoted"] = bool(report["demotions"]) or bool(demoted_keys())
    report["elapsed_ms"] = round((time.perf_counter() - t0) * 1e3, 3)
    return report


# --------------------------------------------------------------------------
# Demotion state (consulted by the tier router)
# --------------------------------------------------------------------------


def is_demoted(fmt, config) -> bool:
    """Has ``(fmt, config)`` been demoted to the bit-exact tier?"""
    if config is None:
        return False
    with _LOCK:
        return (fmt.significand_bits, config.scheme, config.truncated) in _DEMOTED


def demote(fmt, config) -> None:
    """Manually demote ``(fmt, config)`` (tests / operator override)."""
    with _LOCK:
        _DEMOTED.add((fmt.significand_bits, config.scheme, config.truncated))
        _EVENTS.append(
            IntegrityEvent(
                kind="demotion",
                site=f"({fmt.name}, {config.name})",
                action="demoted",
                detail="manual demotion",
            )
        )


def demoted_keys() -> list[tuple]:
    """Snapshot of demoted ``(significand_bits, scheme, truncated)`` keys."""
    with _LOCK:
        return sorted(_DEMOTED)


def integrity_events() -> list[IntegrityEvent]:
    """Every event recorded since the last :func:`reset_integrity`."""
    with _LOCK:
        return list(_EVENTS)


def corruption_counts() -> dict[tuple, int]:
    """Per-site detection counts (drives the demote-after policy)."""
    with _LOCK:
        return dict(_CORRUPTIONS)


def reset_integrity() -> None:
    """Clear events, corruption counts and demotions (tests).

    Table/canary registrations are kept — they mirror live cache state,
    which a reset does not change.
    """
    with _LOCK:
        _CORRUPTIONS.clear()
        _DEMOTED.clear()
        _EVENTS.clear()
