"""Result rendering and artefact writing for experiment runs.

Bridges the engine to :mod:`repro.analysis.reporting`: a
:class:`~repro.experiments.runner.RunResult` renders to the same aligned
plain-text tables the benchmarks print, and persists as ``.csv`` +
``.json`` row files plus a ``manifest.json`` describing how every
artefact was produced (experiment, sweep points, cache hits, timing).
"""

from __future__ import annotations

import csv
import json
import pathlib

from ..analysis.reporting import format_table, title
from .runner import RunResult

__all__ = ["render_result", "write_rows_csv", "write_rows_json", "write_run"]


def render_result(result: RunResult, digits: int = 4) -> str:
    """Plain-text report: title, aligned row table, run footer.

    Rows are padded to the union of all row keys (first-seen order)
    before rendering: ``format_table`` takes its columns from the first
    row, which would silently drop e.g. a summary row's extra columns.
    """
    exp = result.experiment
    head = title(f"{exp.artifact} — {exp.title}")
    columns: dict[str, None] = {}
    for row in result.rows:
        for key in row:
            columns.setdefault(key)
    padded = [{col: row.get(col, "") for col in columns} for row in result.rows]
    table = format_table(padded, digits=digits)
    footer = (
        f"[{exp.name}: {result.points} point(s), {result.hits} cached, "
        f"{result.misses} computed, workers={result.workers}, "
        f"{result.elapsed_s:.2f} s]"
    )
    return f"{head}\n{table}\n{footer}"


def _cell(value: object) -> object:
    """CSV cell encoding: nested lists/dicts become compact JSON."""
    if isinstance(value, (list, dict)):
        return json.dumps(value, separators=(",", ":"))
    return value


def write_rows_csv(rows: list[dict], path: pathlib.Path | str) -> pathlib.Path:
    """Write rows as CSV with the union of row keys as the header."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns or ["empty"])
        writer.writeheader()
        for row in rows:
            writer.writerow({k: _cell(v) for k, v in row.items()})
    return path


def write_rows_json(rows: list[dict], path: pathlib.Path | str) -> pathlib.Path:
    """Write rows as an indented JSON array."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(rows, indent=2) + "\n", encoding="utf-8")
    return path


def write_run(result: RunResult, out_dir: pathlib.Path | str) -> dict[str, str]:
    """Persist one run: ``<name>.csv``, ``<name>.json``, manifest entry.

    The manifest (``manifest.json`` in ``out_dir``) accumulates one
    entry per experiment across invocations, so ``reproduce --all
    --out DIR`` leaves a complete, self-describing artefact directory.
    Returns the written paths keyed by kind.
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    exp = result.experiment
    csv_path = write_rows_csv(result.rows, out_dir / f"{exp.name}.csv")
    json_path = write_rows_json(result.rows, out_dir / f"{exp.name}.json")

    manifest_path = out_dir / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if not isinstance(manifest, dict):
            manifest = {}
    except (OSError, ValueError):
        manifest = {}
    manifest[exp.name] = {
        "artifact": exp.artifact,
        "title": exp.title,
        "points": result.points,
        "rows": len(result.rows),
        "cache_hits": result.hits,
        "cache_misses": result.misses,
        "workers": result.workers,
        "elapsed_s": round(result.elapsed_s, 4),
        "params": list(result.params),
        "csv": csv_path.name,
        "json": json_path.name,
    }
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    return {"csv": str(csv_path), "json": str(json_path), "manifest": str(manifest_path)}
