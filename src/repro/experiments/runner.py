"""Sweep execution: parallel fan-out over points with per-point caching.

:func:`run_experiment` is the one entry point every consumer (CLI,
benchmarks, tests) goes through: it expands an experiment's sweep space
into points, resolves each point against the on-disk result cache,
executes the misses — serially or on a ``multiprocessing`` pool — and
reassembles the rows in deterministic point order, so the output is
byte-identical whatever the worker count or cache state.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from collections.abc import Mapping

from .cache import ResultCache, cache_key
from .registry import Experiment, get_experiment

__all__ = ["RunResult", "experiment_rows", "run_experiment"]


def _sanitize(value: object) -> object:
    """Canonicalise a row value to plain JSON-serialisable Python.

    numpy scalars become ``int``/``float``, tuples become lists — the
    same shapes ``json.load`` would return — so rows computed fresh, rows
    loaded from cache, and rows shipped back from worker processes are
    indistinguishable.
    """
    if type(value) in (str, int, float, bool) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    tolist = getattr(value, "tolist", None)  # numpy scalar OR ndarray
    if callable(tolist):
        unpacked = tolist()
        if type(unpacked) is not type(value):
            return _sanitize(unpacked)
    if isinstance(value, int):  # int subclasses (enum.IntEnum, ...)
        return int(value)
    if isinstance(value, float):
        return float(value)
    return str(value)


def sanitize_rows(rows: list[dict]) -> list[dict]:
    """Canonicalise every row (see :func:`_sanitize`)."""
    return [{str(k): _sanitize(v) for k, v in row.items()} for row in rows]


def _run_point(job: tuple[Experiment, dict]) -> list[dict]:
    """Worker entry: run one sweep point of a pickled experiment.

    The experiment crosses the process boundary by pickle, which
    serialises its module-level ``run`` function by reference — the
    child re-imports the defining module, so dispatch works under both
    fork and spawn start methods without any registry round-trip.
    Experiments whose ``run`` cannot be pickled (lambdas, closures)
    never reach here: the runner detects that up front and executes
    them serially in-process.
    """
    exp, params = job
    return sanitize_rows(exp.run(params))


def _picklable(exp: Experiment) -> bool:
    """Whether ``exp`` can be shipped to a worker process.

    Module-level ``run`` functions pickle by reference; lambdas and
    closures do not — those experiments run serially instead of
    crashing the pool.
    """
    import pickle

    try:
        pickle.dumps(exp)
    except Exception:
        return False
    return True


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Outcome of one :func:`run_experiment` call.

    ``rows`` is the concatenation of every point's rows in point order;
    ``hits``/``misses`` count cache resolution; ``elapsed_s`` is the
    wall-clock for the whole sweep.
    """

    experiment: Experiment
    params: tuple[dict, ...]
    rows: list[dict]
    hits: int
    misses: int
    elapsed_s: float
    workers: int

    @property
    def points(self) -> int:
        """Number of sweep points executed or resolved from cache."""
        return len(self.params)


def run_experiment(
    name_or_experiment: str | Experiment,
    overrides: Mapping[str, object] | None = None,
    workers: int = 1,
    cache: ResultCache | None = None,
    use_cache: bool = True,
) -> RunResult:
    """Run one registered experiment over its full sweep space.

    Parameters
    ----------
    name_or_experiment:
        Registry name (e.g. ``"fig5_energy_breakdown"``) or an
        :class:`Experiment` instance.
    overrides:
        Optional sweep-axis pins / default replacements, passed to
        :meth:`Experiment.points`.
    workers:
        Process count for the fan-out; ``1`` runs in-process.  Only
        cache misses are dispatched, so a warm cache never pays the
        pool start-up cost.
    cache:
        Result cache to consult/populate; defaults to the standard
        on-disk cache when ``use_cache`` is true.
    use_cache:
        ``False`` disables both lookup and population (the CLI's
        ``--no-cache``).
    """
    exp = (
        name_or_experiment
        if isinstance(name_or_experiment, Experiment)
        else get_experiment(name_or_experiment)
    )
    points = exp.points(overrides)
    store = (cache or ResultCache()) if use_cache else None

    start = time.perf_counter()
    keys = [cache_key(exp.name, p) for p in points]
    results: list[list[dict] | None] = [None] * len(points)
    miss_indices: list[int] = []
    for i, key in enumerate(keys):
        cached = store.get(key) if store is not None else None
        if cached is None:
            miss_indices.append(i)
        else:
            results[i] = cached

    jobs = [(exp, points[i]) for i in miss_indices]
    if jobs:
        if workers > 1 and len(jobs) > 1 and _picklable(exp):
            with multiprocessing.Pool(processes=min(workers, len(jobs))) as pool:
                fresh = pool.map(_run_point, jobs, chunksize=1)
        else:
            fresh = [sanitize_rows(exp.run(params)) for _exp, params in jobs]
        for i, rows in zip(miss_indices, fresh):
            results[i] = rows
            if store is not None:
                store.put(keys[i], rows, meta={"experiment": exp.name, "params": points[i]})

    all_rows = [row for rows in results for row in (rows or [])]
    return RunResult(
        experiment=exp,
        params=tuple(points),
        rows=all_rows,
        hits=len(points) - len(miss_indices),
        misses=len(miss_indices),
        elapsed_s=time.perf_counter() - start,
        workers=workers,
    )


def experiment_rows(
    name: str, overrides: Mapping[str, object] | None = None
) -> list[dict]:
    """Serial, uncached rows of one experiment (the benchmark-wrapper path).

    The thin ``benchmarks/bench_*.py`` scripts and ad-hoc callers use
    this to get canonical rows without touching the user's cache.
    """
    return run_experiment(name, overrides=overrides, workers=1, use_cache=False).rows
