"""Content-addressed on-disk cache for experiment sweep points.

A cache entry is one sweep point's rows, keyed by a SHA-256 over

* a **code fingerprint** — the hash of every ``.py`` file in the
  ``repro`` package, so any source change (a new multiplier model, a
  tweaked energy constant) invalidates all previous results;
* the experiment **name**;
* the point's **parameters** in canonical JSON (sorted keys), which
  covers the ``MultiplierConfig`` / float-format / sweep-axis values the
  point was produced from.

Entries are JSON files sharded by key prefix under the cache root
(``$REPRO_CACHE_DIR`` or ``~/.cache/repro-daism``).  Corrupt or
truncated entries read as misses, never as errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile

__all__ = ["ResultCache", "cache_key", "code_fingerprint", "default_cache_dir"]

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Hash of the installed ``repro`` sources (computed once per process).

    Hashing content (not mtimes) keeps the fingerprint stable across
    checkouts of the same revision while changing whenever any module
    that could influence a result changes.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        package_root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def cache_key(name: str, params: dict, fingerprint: str | None = None) -> str:
    """Content-addressed key for one (experiment, sweep point) pair."""
    payload = json.dumps(
        {
            "code": fingerprint if fingerprint is not None else code_fingerprint(),
            "experiment": name,
            "params": params,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-daism``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-daism"


class ResultCache:
    """On-disk rows cache with atomic writes and corruption-safe reads.

    Parameters
    ----------
    root:
        Cache directory; created lazily on the first :meth:`put`.
        Defaults to :func:`default_cache_dir`.
    """

    def __init__(self, root: pathlib.Path | str | None = None):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> list[dict] | None:
        """Rows stored under ``key``, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
            rows = entry["rows"]
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return rows if isinstance(rows, list) else None

    def put(self, key: str, rows: list[dict], meta: dict | None = None) -> None:
        """Store ``rows`` under ``key`` atomically (write + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"meta": meta or {}, "rows": rows})
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def entries(self) -> int:
        """Number of cached sweep points on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
