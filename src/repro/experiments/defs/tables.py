"""Experiments reproducing the paper's tables (Tables I–III).

All three are single-point experiments (no sweep axes): they exist in
the registry so the tables are runnable, cacheable and exportable
through the same engine and CLI as every figure.
"""

from __future__ import annotations

from ..registry import Experiment, register

__all__ = ["table1_point", "table2_point", "table3_point"]


def table1_point(params: dict) -> list[dict]:
    """Table I: summary of the proposed multiplier configurations."""
    from ...core.config import table1_rows

    return table1_rows()


def table2_point(params: dict) -> list[dict]:
    """Table II: DAISM vs published Z-PIM / T-PIM figures.

    The published baselines quote ``(low, high)`` spans; those render as
    ``low~high`` strings here so the rows stay JSON/CSV-clean.
    """
    from ...analysis.reporting import format_range
    from ...arch.compare import table2

    return [
        {
            key: format_range(value, digits=2) if isinstance(value, tuple) else value
            for key, value in row.items()
        }
        for row in table2()
    ]


def table3_point(params: dict) -> list[dict]:
    """Table III: qualitative comparison of the accelerator families."""
    from ...arch.compare import table3_rows

    return table3_rows()


register(
    Experiment(
        name="table1_configs",
        artifact="Table I",
        title="Summary of the proposed multipliers",
        description="The FLA/PC2/PC3 (+truncated) configuration matrix.",
        run=table1_point,
        tags=("table", "core"),
        est_seconds=0.1,
    )
)

register(
    Experiment(
        name="table2_pim_comparison",
        artifact="Table II",
        title="Performance comparison between PIM architectures",
        description=(
            "DAISM 16x8kB / 16x32kB model outputs next to the published "
            "Z-PIM and T-PIM specs: GOPS, GOPS/mW, GOPS/mm2."
        ),
        run=table2_point,
        tags=("table", "arch"),
        est_seconds=1.0,
    )
)

register(
    Experiment(
        name="table3_summary",
        artifact="Table III",
        title="Key differences between DAISM and related work",
        description="Qualitative feature matrix of the accelerator families.",
        run=table3_point,
        tags=("table", "arch"),
        est_seconds=0.1,
    )
)
