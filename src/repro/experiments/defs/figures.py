"""Experiments reproducing the paper's figures (Fig. 4–8).

Every ``*_point`` function is a pure, module-level map from one sweep
point to rows, so the runner can dispatch points to worker processes and
cache them independently: Fig. 4 parallelises over models (each worker
trains one CNN), Fig. 5/6 over the datatype x bank-size grid, Fig. 8
over its two area sweeps.
"""

from __future__ import annotations

from ..registry import Experiment, register

__all__ = [
    "fig4_backends",
    "fig4_point",
    "fig5_point",
    "fig6_point",
    "fig7_point",
    "fig8_point",
]


def fig4_backends() -> dict:
    """The Fig. 4 arithmetic suite: exact, quantised, DAISM, ablation."""
    from ...core.config import FLA, PC3_TR
    from ...formats.floatfmt import BFLOAT16
    from ...nn.backend import daism_backend, exact_backend, quantized_backend

    return {
        "float32 (baseline)": exact_backend(),
        "bfloat16 exact": quantized_backend(BFLOAT16),
        "bfloat16 PC3_tr (DAISM)": daism_backend(PC3_TR, BFLOAT16),
        "bfloat16 FLA (ablation)": daism_backend(FLA, BFLOAT16),
    }


def fig4_point(params: dict) -> list[dict]:
    """Train one model-zoo CNN in float32, re-evaluate under each backend."""
    from ...nn.data import shapes_dataset
    from ...nn.models import model_zoo
    from ...nn.train import accuracy_comparison, train

    data = shapes_dataset(
        n_train=params["n_train"],
        n_test=params["n_test"],
        size=params["size"],
        seed=params["seed"],
    )
    model = model_zoo(size=params["size"])[params["model"]]
    train(
        model,
        data,
        epochs=params["epochs"],
        batch_size=params["batch_size"],
        lr=params["lr"],
        seed=params["seed"],
    )
    accs = accuracy_comparison(model, data, fig4_backends())
    baseline = accs["float32 (baseline)"]
    daism = accs["bfloat16 PC3_tr (DAISM)"]
    return [
        {
            "model": params["model"],
            **{k: f"{v:.3f}" for k, v in accs.items()},
            "pc3_tr drop [pts]": f"{100 * (baseline - daism):+.1f}",
        }
    ]


def fig5_point(params: dict) -> list[dict]:
    """One Fig. 5 grid cell: energy breakdown for (datatype, bank size)."""
    from ...analysis.sweeps import fig5_rows
    from ...formats.floatfmt import format_by_name

    return fig5_rows(
        bank_kbs=(params["bank_kb"],), fmts=(format_by_name(params["datatype"]),)
    )


def fig6_point(params: dict) -> list[dict]:
    """One Fig. 6 point: relative improvement incl. exponent handling."""
    from ...analysis.sweeps import fig6_rows
    from ...core.config import MultiplierConfig
    from ...formats.floatfmt import format_by_name

    return fig6_rows(
        bank_kbs=(params["bank_kb"],),
        fmts=(format_by_name(params["datatype"]),),
        config=MultiplierConfig.from_name(params["config"]),
    )


def fig7_point(params: dict) -> list[dict]:
    """The Fig. 7 scatter: cycles vs area for bank variants + Eyeriss."""
    from ...arch.compare import fig7_tradeoff

    return [
        {
            "design": p.name,
            "cycles": p.cycles,
            "area_mm2": p.area_mm2,
            "total_pes": p.total_pes,
            "utilization": p.utilization,
        }
        for p in sorted(fig7_tradeoff(), key=lambda p: p.cycles)
    ]


def fig8_point(params: dict) -> list[dict]:
    """One Fig. 8 sweep: area breakdown vs bank width or bank count."""
    from ...arch.compare import fig8_breakdown

    if params["sweep"] == "bank_kb":
        return fig8_breakdown(banks_sweep=())
    return fig8_breakdown(bank_kb_sweep=())


register(
    Experiment(
        name="fig4_accuracy",
        artifact="Fig. 4",
        title="CNN accuracy: bfloat16 PC3_tr vs exact float32",
        description=(
            "Trains the model-zoo CNNs in float32 on the synthetic shapes "
            "dataset and re-evaluates the same weights under exact bfloat16, "
            "DAISM PC3_tr and the FLA ablation; reproduces the 'minimal to no "
            "degradation' claim."
        ),
        run=fig4_point,
        space={"model": ("lenet", "vgg_small", "mini_resnet")},
        defaults={
            "n_train": 448,
            "n_test": 192,
            "size": 16,
            "seed": 0,
            "epochs": 10,
            "batch_size": 32,
            "lr": 0.05,
        },
        tags=("figure", "nn", "slow"),
        est_seconds=300.0,
    )
)

register(
    Experiment(
        name="fig5_energy_breakdown",
        artifact="Fig. 5",
        title="Energy breakdown per multiplication",
        description=(
            "All proposed mantissa multipliers against the conventional "
            "baseline, itemised into memory read / multiplier / register "
            "file / decoder, per datatype and bank size."
        ),
        run=fig5_point,
        space={"datatype": ("bfloat16", "float32"), "bank_kb": (8, 32)},
        tags=("figure", "energy"),
        est_seconds=1.0,
    )
)

register(
    Experiment(
        name="fig6_exponent_handling",
        artifact="Fig. 6",
        title="Relative energy improvement incl. exponent handling",
        description=(
            "PC3_tr against the baseline with the common exponent-handling "
            "cost folded into both sides, across bank sizes and datatypes."
        ),
        run=fig6_point,
        space={"datatype": ("bfloat16", "float32"), "bank_kb": (2, 8, 32, 128, 512)},
        defaults={"config": "PC3_tr"},
        tags=("figure", "energy"),
        est_seconds=1.0,
    )
)

register(
    Experiment(
        name="fig7_cycles_vs_area",
        artifact="Fig. 7",
        title="Cycles vs on-chip area, VGG-8 conv1 (bfloat16, PC3_tr)",
        description=(
            "DAISM bank/size variants against the Eyeriss baseline executing "
            "VGG-8 conv1: banking buys cycles at the cost of area."
        ),
        run=fig7_point,
        tags=("figure", "arch"),
        est_seconds=2.0,
    )
)

register(
    Experiment(
        name="fig8_area_breakdown",
        artifact="Fig. 8",
        title="DAISM area breakdown",
        description=(
            "SRAM vs other digital circuit area under two sweeps: growing "
            "bank width (SRAM dominates) and splitting a fixed 512 kB across "
            "more banks (digital dominates)."
        ),
        run=fig8_point,
        space={"sweep": ("bank_kb", "banks")},
        tags=("figure", "arch"),
        est_seconds=1.0,
    )
)
