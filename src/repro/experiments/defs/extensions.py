"""Beyond-the-paper extension experiments.

Whole-network execution (all eight VGG-8 layers instead of Fig. 7's
single conv1), the arithmetic-error comparison against related-work
approximate multipliers (LPO, PP-compression), the packed-operand
pipeline probe (quantise-once weight packing vs per-call repacking),
and the GEMM kernel-registry probe (per-kernel parity and table-cache
behaviour of the float-domain / BLAS-factored back ends).
"""

from __future__ import annotations

from ..registry import Experiment, register

__all__ = [
    "kernel_speedup_point",
    "network_end2end_point",
    "packed_speedup_point",
    "related_work_point",
    "tier_certification_point",
]


def network_end2end_point(params: dict) -> list[dict]:
    """All VGG-8 layers on one design, plus the vs-Eyeriss summary row."""
    from ...arch.daism import DaismDesign
    from ...arch.network_runner import compare_with_eyeriss, run_network
    from ...arch.workloads import vgg8_layers

    design = DaismDesign(banks=params["banks"], bank_kb=params["bank_kb"])
    layers = vgg8_layers()
    rows = run_network(design, layers).rows()
    cmp = compare_with_eyeriss(design, layers)
    rows.append(
        {
            "layer": "vs Eyeriss",
            "cycle_ratio": f"{cmp['cycle_ratio']:.2f}x",
            "area_ratio": f"{cmp['area_ratio']:.2f}x",
        }
    )
    return rows


def packed_speedup_point(params: dict) -> list[dict]:
    """Per-call front-end work of packed vs repacked weights on one shape.

    Mirrors what the ``nn`` layers do for inference: the weight side is
    packed once via ``backend.prepare`` and reused, so the only per-call
    front-end work left is packing the activations.  The row reports the
    *measured* packing work each variant performs per call — counts are
    deterministic, so the rows are cache-safe (wall-clock timings live in
    ``benchmarks/perf``, outside the cached registry).
    """
    import numpy as np

    from ...core.config import PC3_TR
    from ...formats.floatfmt import BFLOAT16
    from ...formats.packed import packing_counters, reset_packing_counters
    from ...nn.backend import daism_backend

    m, k, n = params["m"], params["k"], params["n"]
    kernel = params.get("kernel") or None
    rng = np.random.default_rng(params["seed"])
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    backend = daism_backend(PC3_TR, BFLOAT16, kernel=kernel)
    prepared = backend.prepare(b)
    want = backend.matmul(a, b)

    def front_end_work(rhs) -> tuple[int, int]:
        reset_packing_counters()
        out = backend.matmul(a, rhs)
        counters = packing_counters()
        np.testing.assert_array_equal(
            out.view(np.uint32), want.view(np.uint32)
        )  # packing must never change the arithmetic
        return counters["pack_calls"], counters["elements_packed"]

    raw_packs, raw_elems = front_end_work(b)
    prep_packs, prep_elems = front_end_work(prepared)
    return [
        {
            "shape": f"{m}x{k}x{n}",
            "kernel": kernel or "float_table",
            "packs/call raw": raw_packs,
            "packs/call prepared": prep_packs,
            "elems packed raw": raw_elems,
            "elems packed prepared": prep_elems,
            "front-end work saved": f"{100.0 * (1 - prep_elems / raw_elems):.0f}%",
        }
    ]


#: Representative GEMM shapes per scenario workload, swept by
#: ``kernel_speedup``: LeNet-class (the historical default probe), the
#: MobileNet-edge ``pw2`` pointwise conv (``oh*ow x C_in x C_out`` after
#: im2col at 24x24), and the transformer block's QKV projection
#: (``seq x d_model x 3*d_model``).
_WORKLOAD_GEMMS = {
    "lenet": (96, 64, 32),
    "mobilenet_edge": (576, 64, 128),
    "transformer_block": (64, 256, 768),
}


def kernel_speedup_point(params: dict) -> list[dict]:
    """Per-kernel parity rows for one GEMM shape and multiplier config.

    Runs every registered kernel that supports the format on identical
    packed operands and reports, per kernel, whether the output is
    byte-identical to the bit-exact default, the maximum relative
    element deviation, and (for the BLAS fast path) the correction rank
    and its documented residual.  Counts and parity are deterministic,
    so the rows are cache-safe; wall-clock speedups live in
    ``benchmarks/perf`` (recorded per kernel in ``BENCH_perf.json``).
    """
    import numpy as np

    from ...core.config import MultiplierConfig
    from ...core.kernels import (
        default_k_chunk,
        get_kernel,
        kernel_names,
        select_kernel,
        table_cache_counters,
    )
    from ...formats.floatfmt import format_by_name
    from ...formats.packed import pack

    fmt = format_by_name(params["fmt"])
    config = MultiplierConfig.from_name(params["config"])
    workload = params.get("workload")
    if workload is not None and workload != "custom":
        try:
            m, k, n = _WORKLOAD_GEMMS[workload]
        except KeyError:
            raise KeyError(
                f"unknown workload {workload!r}; known: "
                f"{', '.join(sorted(_WORKLOAD_GEMMS))}, custom (use m/k/n)"
            ) from None
    else:
        # ``--set workload=custom`` pins the sweep axis to one point and
        # hands shape control back to the m/k/n parameters.
        m, k, n = params["m"], params["k"], params["n"]
    rng = np.random.default_rng(params["seed"])
    pa = pack(rng.standard_normal((m, k)).astype(np.float32), fmt)
    pb = pack(rng.standard_normal((k, n)).astype(np.float32), fmt)
    k_chunk = default_k_chunk(m, n)

    default = select_kernel(fmt, config)
    want = default.run(pa, pb, config, k_chunk)
    norm = float(np.abs(want).max()) or 1.0

    rows = []
    for name in kernel_names():
        kernel = get_kernel(name)
        if not kernel.supports(fmt, config):
            continue
        kernel.run(pa, pb, config, k_chunk)  # warm: builds tables on first use
        before = table_cache_counters()
        got = kernel.run(pa, pb, config, k_chunk)
        after = table_cache_counters()
        byte_identical = bool(
            np.array_equal(got.view(np.uint32), want.view(np.uint32))
        )
        max_rel = float(np.abs(got - want).max() / norm)
        row = {
            "workload": workload or "custom",
            "gemm": f"{m}x{k}x{n}",
            "kernel": name,
            "bit_exact contract": "yes" if kernel.bit_exact else "no (tolerance)",
            "byte-identical to default": "yes" if byte_identical else "no",
            "max rel deviation": f"{max_rel:.2e}",
            "table rebuilds on reuse": after["misses"] - before["misses"],
        }
        if name.startswith("blas_factored"):
            info = kernel.correction_info(fmt, config)
            row["correction"] = (
                f"rank {info['rank']} (resid {info['rel_frobenius_residual']:.1%})"
            )
        else:
            row["correction"] = "-"
        rows.append(row)
    return rows


def tier_certification_point(params: dict) -> list[dict]:
    """Rank-vs-error study behind the certified tier router, one config.

    Sweeps the BLAS-factored fast path's correction rank (including the
    registry default's automatic choice) against the bit-exact tier on a
    fixed probe GEMM, reporting per rank the truncated table's residual,
    the measured relative Frobenius deviation, and how far inside the
    paper's analytic ``worst_case_relative_error`` bound it sits.  The
    final row is the router's verdict at the default margin: whether
    ``kernel="auto"`` sends non-tiny shapes of this config to the fast
    path or keeps them on the bit-exact tier.  Fixed probe and seed —
    deterministic and cache-safe.
    """
    import numpy as np

    from ...core.config import MultiplierConfig
    from ...core.error_bounds import worst_case_relative_error
    from ...core.kernels import BlasFactoredKernel, default_k_chunk, get_kernel
    from ...core.router import CERT_MARGIN, FAST_TIERS, certify_fast_path
    from ...formats.floatfmt import format_by_name
    from ...formats.packed import pack

    fmt = format_by_name(params["fmt"])
    config = MultiplierConfig.from_name(params["config"])
    m, k, n = params["m"], params["k"], params["n"]
    rng = np.random.default_rng(params["seed"])
    pa = pack(rng.standard_normal((m, k)).astype(np.float32), fmt)
    pb = pack(rng.standard_normal((k, n)).astype(np.float32), fmt)
    k_chunk = default_k_chunk(m, n)
    exact = get_kernel("float_table").run(pa, pb, config, k_chunk)
    denom = float(np.linalg.norm(exact)) or 1.0
    bound = float(worst_case_relative_error(config, fmt.significand_bits))

    def measure(kernel) -> tuple[dict, float]:
        got = kernel.run(pa, pb, config, k_chunk)
        info = kernel.correction_info(fmt, config)
        return info, float(np.linalg.norm(got - exact)) / denom

    rows = []
    for rank in (0, 1, 2, 4, 8, 16, None):
        info, measured = measure(BlasFactoredKernel(rank=rank))
        rows.append(
            {
                "rank": "auto" if rank is None else rank,
                "table residual": f"{info['rel_frobenius_residual']:.1%}",
                "measured rel err": f"{measured:.2e}",
                "analytic bound": f"{bound:.3g}",
                "measured/bound": f"{measured / bound:.3f}",
                "within margin": "yes" if measured <= CERT_MARGIN * bound else "no",
            }
        )
    cert = None
    for candidate in FAST_TIERS:
        cert = certify_fast_path(
            fmt, config, shape=(m, k, n), seed=params["seed"], kernel=candidate
        )
        if cert.certified:
            break
    rows.append(
        {
            "rank": f"router/{cert.kernel} (rank {cert.rank})",
            "table residual": f"{cert.rel_frobenius_residual:.1%}",
            "measured rel err": f"{cert.measured_rel_error:.2e}",
            "analytic bound": f"{cert.analytic_bound:.3g}",
            "measured/bound": f"{cert.measured_rel_error / cert.analytic_bound:.3f}",
            "within margin": (
                f"certified -> {cert.kernel}"
                if cert.certified
                else "NOT certified -> bit-exact tier"
            ),
        }
    )
    return rows


def related_work_point(params: dict) -> list[dict]:
    """Error rows for one multiplier family on the bf16 significand range."""
    import numpy as np

    from ...core.config import all_configs
    from ...core.related_work import (
        compressed_pp_multiply_array,
        lower_part_or_multiply_array,
    )
    from ...core.vectorized import approx_multiply_array

    rng = np.random.default_rng(params["seed"])
    n = params["samples"]
    a = rng.integers(128, 256, n, dtype=np.uint64)
    b = rng.integers(128, 256, n, dtype=np.uint64)
    exact = (a * b).astype(np.float64)

    def row(name: str, approx: np.ndarray, needs_adders: str) -> dict:
        err = (exact - approx.astype(np.float64)) / exact
        return {
            "multiplier": name,
            "mean rel err": f"{err.mean():.4f}",
            "max rel err": f"{err.max():.4f}",
            "adder tree": needs_adders,
            "in-memory": "no" if needs_adders == "yes" else "yes",
        }

    family = params["family"]
    rows = []
    if family == "daism":
        for config in all_configs():
            approx = approx_multiply_array(a, b, 8, config).astype(np.float64)
            if config.truncated:
                approx = approx * 256.0
            rows.append(row(f"DAISM {config.name}", approx, "no"))
    elif family == "lpo":
        for split in (8, 10, 12):
            rows.append(
                row(
                    f"LPO split={split} [Guo'18]",
                    lower_part_or_multiply_array(a, b, 8, split),
                    "yes",
                )
            )
    elif family == "ppc":
        for stages in (1, 2):
            rows.append(
                row(
                    f"PP-compress x{stages} [Qiqieh'17]",
                    compressed_pp_multiply_array(a, b, 8, stages),
                    "yes",
                )
            )
    else:
        raise ValueError(f"unknown multiplier family {family!r}")
    return rows


register(
    Experiment(
        name="network_end2end",
        artifact="Extension",
        title="VGG-8 end-to-end execution (16x32kB)",
        description=(
            "Whole-network run beyond Fig. 7's single layer: per-layer "
            "cycles/energy, pass counts for layers exceeding the compute "
            "SRAM, and the end-to-end cycle/area ratio vs Eyeriss."
        ),
        run=network_end2end_point,
        defaults={"banks": 16, "bank_kb": 32},
        tags=("extension", "arch"),
        est_seconds=2.0,
    )
)

register(
    Experiment(
        name="packed_speedup",
        artifact="Extension",
        title="Quantise-once weight packing: per-call front-end work",
        description=(
            "The PackedTensor pipeline probe: a DAISM bfloat16 PC3_tr GEMM "
            "against a pre-packed weight (backend.prepare, as the nn layers "
            "cache it) vs repacking the weight every call — the measured "
            "quantise/decompose work per call, with byte-identical outputs "
            "asserted. Set kernel=blas_factored (or any registry name) to "
            "probe a non-default GEMM kernel's front end. Wall-clock "
            "timings live in benchmarks/perf."
        ),
        run=packed_speedup_point,
        space={"m": (64, 256)},
        defaults={"k": 128, "n": 64, "seed": 0, "kernel": ""},
        tags=("extension", "core", "perf"),
        est_seconds=2.0,
    )
)

register(
    Experiment(
        name="kernel_speedup",
        artifact="Extension",
        title="GEMM kernel registry: per-kernel parity and cache behaviour",
        description=(
            "The float-domain value-table kernel and the BLAS-factored "
            "exact+correction fast path next to the uint32-fused and "
            "generic pipelines: byte-identity to the bit-exact default, "
            "maximum relative deviation of the tolerance path, correction "
            "rank/residual, and proof that warm kernels never rebuild "
            "their tables, across representative GEMM shapes from the "
            "LeNet-class probe, the MobileNet-edge pointwise conv and the "
            "transformer QKV projection. Wall-clock speedups are recorded "
            "per kernel in BENCH_perf.json by benchmarks/perf."
        ),
        run=kernel_speedup_point,
        space={
            "config": ("PC3_tr", "FLA"),
            "workload": ("lenet", "mobilenet_edge", "transformer_block"),
        },
        defaults={"fmt": "bfloat16", "m": 96, "k": 64, "n": 32, "seed": 0},
        tags=("extension", "core", "perf"),
        est_seconds=4.0,
    )
)

register(
    Experiment(
        name="tier_certification",
        artifact="Extension",
        title="Certified tier routing: rank-vs-error study per config",
        description=(
            "The evidence behind kernel='auto': the BLAS-factored fast "
            "path's measured deviation from the bit-exact tier as its "
            "correction rank grows, against the paper's analytic worst-"
            "case bound, ending with the router's verdict at the default "
            "margin. A config only ever routes to the fast path when its "
            "measured error clears margin x bound on the fixed probe."
        ),
        run=tier_certification_point,
        space={"config": ("FLA", "PC2", "PC3", "PC2_tr", "PC3_tr")},
        defaults={"fmt": "bfloat16", "m": 96, "k": 128, "n": 48, "seed": 0},
        tags=("extension", "core", "perf"),
        est_seconds=4.0,
    )
)

register(
    Experiment(
        name="related_work_multipliers",
        artifact="Extension",
        title="DAISM vs related-work approximate multipliers (bf16 range)",
        description=(
            "Arithmetic error of the DAISM configs next to Guo's lower-part-"
            "OR and Qiqieh's PP-compression designs: PC3 sits in the same "
            "accuracy class while needing no adder tree."
        ),
        run=related_work_point,
        space={"family": ("daism", "lpo", "ppc")},
        defaults={"samples": 1 << 14, "seed": 0},
        tags=("extension", "core"),
        est_seconds=2.0,
    )
)
