"""Fault-tolerance experiment: fault rate x site vs goodput/accuracy/recovery.

Sweeps seeded fault injection over the four chaos sites and measures
what the serving stack delivers under each: the fraction of requests
that still resolve with data (goodput), the arithmetic damage while the
fault is live (extra relative error vs the fault-free plan), whether
the integrity layer detected it, how long recovery took, and whether
post-recovery outputs are byte-identical to the healthy baseline.

Everything here is **in-process** by design: the experiment engine fans
sweep points out over daemonic ``multiprocessing.Pool`` workers, which
cannot fork fleet worker processes.  Kernel-state sites (``table``,
``weight_plane``) run against a compiled plan directly; serving sites
(``worker_crash``, ``latency_spike``) run the thread-based
:class:`~repro.runtime.server.InferenceServer` over a chaos-wrapped
engine.  The real multi-process fleet under combined failures is
covered by the chaos matrix (``python -m repro chaos-smoke``) and the
``fault_tolerance`` BENCH section.

``rate`` scales each site's injection intensity: bit flips across the
cached tables (``rate x 1e5`` flips), the packed-plane cell fault rate,
or the per-batch crash/stall probability.
"""

from __future__ import annotations

from ..registry import Experiment, register

__all__ = ["fault_tolerance_point"]


def _compiled_lenet(seed: int):
    import numpy as np

    from ...core.config import PC3_TR
    from ...nn.backend import daism_backend
    from ...nn.models import model_zoo
    from ...runtime.plan import compile_plan

    plan = compile_plan(model_zoo()["lenet"], daism_backend(PC3_TR))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((8, 1, 16, 16)).astype(np.float32)
    return plan, x, rng


def _rel_error(got, want) -> tuple[float, float]:
    import numpy as np

    got = np.asarray(got, dtype=np.float64)
    want = np.asarray(want, dtype=np.float64)
    scale = np.where(want == 0, 1.0, np.abs(want))
    err = np.abs(got - want) / scale
    return float(err.mean()), float(err.max())


def _row(site, rate, goodput, err_mean, err_max, detected, recovery_ms, parity):
    return {
        "site": site,
        "rate": f"{rate:g}",
        "goodput": f"{100.0 * goodput:.1f}%",
        "extra rel. error (mean)": f"{err_mean:.3g}",
        "max": f"{err_max:.3g}",
        "detected": detected,
        "recovery ms": f"{recovery_ms:.2f}",
        "post-recovery parity": "yes" if parity else "NO",
    }


def _table_site(rate: float, seed: int) -> list[dict]:
    import time

    import numpy as np

    from ...chaos.inject import corrupt_cached_tables
    from ...core.integrity import check_and_heal

    plan, x, rng = _compiled_lenet(seed)
    baseline = plan.execute(x)
    flips = int(rate * 1e5)
    injected: list = []
    if flips:
        injected = corrupt_cached_tables(
            n_tables=64, flips_per_table=max(1, flips), seed=rng
        )
    err_mean, err_max = _rel_error(plan.execute(x), baseline)
    t0 = time.perf_counter()
    report = check_and_heal()
    recovery_ms = (time.perf_counter() - t0) * 1e3
    detected = len(report["corrupted_tables"]) >= len(injected)
    parity = bool(np.array_equal(plan.execute(x), baseline))
    return [
        _row(
            "table",
            rate,
            1.0,
            err_mean,
            err_max,
            "yes" if flips and detected else ("n/a" if not flips else "NO"),
            recovery_ms,
            parity,
        )
    ]


def _weight_plane_site(rate: float, seed: int) -> list[dict]:
    import time

    import numpy as np

    from ...chaos.inject import wrap_plan_kernels
    from ...runtime.ops import PackedKernelStrategy
    from ...runtime.plan import op_strategies
    from ...sram.faults import inject_random_faults

    plan, x, rng = _compiled_lenet(seed)
    baseline = plan.execute(x)
    packed = [
        s
        for op in plan.ops
        for s in op_strategies(op)
        if isinstance(s, PackedKernelStrategy)
    ]
    min_size = min(s.weight.size for s in packed)
    bits = packed[0].fmt.significand_bits
    faults = inject_random_faults(min_size, bits, cell_fault_rate=rate, seed=rng)
    _, restore = wrap_plan_kernels(plan, faults)
    err_mean, err_max = _rel_error(plan.execute(x), baseline)
    t0 = time.perf_counter()
    restore()
    recovery_ms = (time.perf_counter() - t0) * 1e3
    parity = bool(np.array_equal(plan.execute(x), baseline))
    # Read-path faults corrupt what the kernel *senses*, not the stored
    # bytes the checksums cover — detection is out of scope by design
    # (the canary catches them only when they hit its pinned operands).
    return [_row("weight_plane", rate, 1.0, err_mean, err_max, "n/a", recovery_ms, parity)]


def _serving_site(site: str, rate: float, seed: int, params: dict) -> list[dict]:
    import numpy as np

    from ...runtime.engine import BatchEngine
    from ...runtime.server import InferenceServer

    plan, x_ref, rng = _compiled_lenet(seed)
    baseline = plan.execute(x_ref[:2])
    spike_s = params["spike_ms"] / 1e3

    class _ChaosEngine(BatchEngine):
        """Injects crashes/stalls ahead of the real shard execution."""

        def run(self, x):
            if site == "worker_crash" and rng.random() < rate:
                raise RuntimeError("injected worker crash")
            if site == "latency_spike" and rng.random() < rate:
                import time

                time.sleep(spike_s)
            return super().run(x)

    n = int(params["requests"])
    ok = failed = 0
    with InferenceServer(
        _ChaosEngine(plan, shards=1), max_batch=8, max_delay_ms=1.0
    ) as server:
        for i in range(n):
            x = rng.standard_normal((2, 1, 16, 16)).astype(np.float32)
            try:
                server.submit(x).result(timeout=60)
                ok += 1
            except RuntimeError:
                failed += 1  # structured failure on the future, not a drop
        out = server.submit(x_ref[:2]).result(timeout=60)
    parity = bool(np.array_equal(out, baseline))
    err_mean, err_max = (0.0, 0.0)  # served outputs are byte-exact
    assert ok + failed == n
    return [_row(site, rate, ok / n, err_mean, err_max, "n/a", 0.0, parity)]


def fault_tolerance_point(params: dict) -> list[dict]:
    """One (site, rate) cell of the fault-tolerance sweep."""
    site = params["site"]
    rate = float(params["rate"])
    seed = int(params["seed"])
    if site == "table":
        return _table_site(rate, seed)
    if site == "weight_plane":
        return _weight_plane_site(rate, seed)
    if site in ("worker_crash", "latency_spike"):
        return _serving_site(site, rate, seed, params)
    raise ValueError(f"unknown fault site {site!r}")


register(
    Experiment(
        name="fault_tolerance",
        artifact="Extension",
        title="Serving goodput and recovery under injected faults",
        description=(
            "Extends the paper's resilience argument from arithmetic to "
            "the serving stack: seeded faults at four sites (cached-table "
            "bit flips, packed weight-plane stuck-at cells, per-batch "
            "crashes, latency spikes) against goodput, live arithmetic "
            "error, integrity detection, recovery time and post-recovery "
            "byte parity. Kernel sites heal through the checksum/canary "
            "layer; serving sites resolve every request structurally "
            "(zero drops). The multi-process fleet under combined "
            "failures runs in the chaos matrix (chaos-smoke)."
        ),
        run=fault_tolerance_point,
        space={
            "site": ("table", "weight_plane", "worker_crash", "latency_spike"),
            "rate": (0.0, 0.001, 0.01),
        },
        defaults={"seed": 0, "requests": 32, "spike_ms": 20.0},
        tags=("extension", "chaos", "serving"),
        est_seconds=10.0,
    )
)
