"""Built-in experiment definitions (imported for their side effects).

Each module registers the experiments of one group into
:mod:`repro.experiments.registry` at import time:

* :mod:`~repro.experiments.defs.figures` — Fig. 4–8;
* :mod:`~repro.experiments.defs.tables` — Tables I–III;
* :mod:`~repro.experiments.defs.ablations` — the eight ablation studies;
* :mod:`~repro.experiments.defs.extensions` — beyond-the-paper runs
  (whole-network execution, related-work multiplier comparison);
* :mod:`~repro.experiments.defs.accelerator` — the accelerator
  co-simulation suite (``dse_sweep``, ``network_latency``,
  ``fault_sensitivity``);
* :mod:`~repro.experiments.defs.chaos` — the serving fault-tolerance
  sweep (``fault_tolerance``);
* :mod:`~repro.experiments.defs.scheduling` — the scheduling trace
  replay (``trace_replay``): static vs cost-model policies across the
  DSE design grid.
"""

from . import (  # noqa: F401
    ablations,
    accelerator,
    chaos,
    extensions,
    figures,
    scheduling,
    tables,
)
