"""Accelerator co-simulation experiments (``dse_sweep``, ``network_latency``,
``fault_sensitivity``).

These drive the architecture third of the codebase through the cached,
parallel experiment engine:

* **dse_sweep** — whole-network design-space grids
  (:func:`repro.arch.dse.evaluate_grid`) per workload, with the
  cycles-vs-area Pareto front marked;
* **network_latency** — end-to-end latency/energy of a DAISM design next
  to the Eyeriss baseline on diverse networks (edge CNNs, depthwise
  MobileNet, a transformer block) across batch sizes;
* **fault_sensitivity** — multiplier error under stuck-at cell faults
  *and* dead wordlines, computed on the vectorized bit-plane path
  (:meth:`~repro.sram.bank.ComputeBank.multiply_batch`), which is what
  makes a rate x dead-row grid tractable (the scalar reference path is
  kept for the bit-identity property tests and the perf baseline in
  ``benchmarks/perf``).
"""

from __future__ import annotations

from ..registry import Experiment, register

__all__ = [
    "dse_sweep_point",
    "fault_error_matrix",
    "fault_sensitivity_point",
    "network_latency_point",
]


def fault_error_matrix(
    rate: float,
    dead_row_rate: float,
    seed: int,
    config_name: str = "PC3_tr",
    vectorized: bool = True,
):
    """Relative-error matrix of one faulty bank vs the fault-free multiplier.

    Samples an implicit-one operand grid, injects stuck-at cells and dead
    wordlines into an 8 kB compute bank, streams the operands, and
    returns ``|faulty - fault-free| / fault-free`` per product (float64
    array of shape ``(operands, rows, slots)``).  ``vectorized`` selects
    :meth:`~repro.sram.bank.ComputeBank.multiply_batch` (bit-plane fast
    path) or the scalar row-by-row loop — both are bit-identical
    (property-tested), so the flag only changes the runtime; the perf
    harness times one against the other.
    """
    import numpy as np

    from ...core.config import MultiplierConfig
    from ...core.vectorized import approx_multiply_array
    from ...sram.bank import ComputeBank
    from ...sram.faults import inject_random_faults

    config = MultiplierConfig.from_name(config_name)
    rng = np.random.default_rng(seed)
    # One stream end to end: the fault map draws from the same generator
    # as the operand sampling below (the chaos injectors share this
    # contract), instead of re-deriving a second generator from the seed.
    fm = inject_random_faults(
        256, 256, cell_fault_rate=rate, dead_row_rate=dead_row_rate, seed=rng
    )
    bank = ComputeBank(8 * 1024, config, 8, fault_model=fm)
    # Fill the whole bank (geometry depends on the config's word width and
    # line count) and stream 96 operands — large enough that the readout
    # path, not the per-point setup (fault sampling, line expansion),
    # dominates the runtime.
    values = rng.integers(
        128, 256, size=(bank.element_rows, bank.slots_per_row)
    ).astype(np.uint64)
    operands = rng.integers(128, 256, 96).astype(np.uint64)
    bank.load_elements(values)
    if vectorized:
        got = bank.multiply_batch(operands).astype(np.float64)
    else:
        got = np.stack([bank.multiply_all(int(b)) for b in operands]).astype(np.float64)

    want = approx_multiply_array(
        values[None, :, :], operands[:, None, None], 8, config
    ).astype(np.float64)
    scale = np.where(want == 0, 1.0, want)
    return np.abs(got - want) / scale


def fault_sensitivity_point(params: dict) -> list[dict]:
    """Error statistics for one (cell fault rate, dead row rate) cell."""
    import numpy as np

    errs = np.stack(
        [
            fault_error_matrix(
                params["rate"],
                params["dead_row_rate"],
                seed,
                config_name=params["config"],
            )
            for seed in range(params["seeds"])
        ]
    )
    return [
        {
            "cell fault rate": f"{params['rate']:.4f}",
            "dead row rate": f"{params['dead_row_rate']:.3f}",
            "config": params["config"],
            "extra rel. error (mean)": f"{errs.mean():.4f}",
            "p99": f"{np.quantile(errs, 0.99):.4f}",
            "max": f"{errs.max():.4f}",
            "affected products": f"{100.0 * np.mean(errs > 0):.1f}%",
        }
    ]


def dse_sweep_point(params: dict) -> list[dict]:
    """Whole-network DSE grid for one workload (Pareto front marked)."""
    from ...arch.dse import evaluate_grid
    from ...arch.workloads import workload_by_name

    rows = evaluate_grid(
        workload_by_name(params["workload"]),
        banks_grid=tuple(params["banks_grid"]),
        bank_kb_grid=tuple(params["bank_kb_grid"]),
        batch=params["batch"],
    )
    for row in rows:
        row["workload"] = params["workload"]
    return rows


def network_latency_point(params: dict) -> list[dict]:
    """DAISM vs Eyeriss summary rows for one (network, batch) cell."""
    from ...arch.daism import DaismDesign
    from ...arch.eyeriss import EyerissDesign
    from ...arch.network_runner import compare_designs
    from ...arch.workloads import workload_by_name

    design = DaismDesign(banks=params["banks"], bank_kb=params["bank_kb"])
    layers = workload_by_name(params["network"])
    rows = compare_designs([design, EyerissDesign()], layers, batch=params["batch"])
    for row in rows:
        row["network"] = params["network"]
    return rows


register(
    Experiment(
        name="dse_sweep",
        artifact="Extension",
        title="Design-space grids per workload (Pareto-marked)",
        description=(
            "Automates Sec. V-D's informal trade-off selection on whole "
            "networks: every banks x bank-size design runs the full layer "
            "list, rows carry cycles/latency/area/GOPS-per-mW and whether "
            "the point is cycles-vs-area Pareto-optimal. Workloads span "
            "the paper's VGG-8 conv1, a depthwise MobileNet edge stack "
            "and a transformer block's weight GEMMs."
        ),
        run=dse_sweep_point,
        space={"workload": ("vgg8_conv1", "mobilenet_edge", "transformer_block")},
        defaults={
            "banks_grid": (1, 4, 16, 32),
            "bank_kb_grid": (2, 8, 32, 128),
            "batch": 1,
        },
        tags=("extension", "arch", "dse"),
        est_seconds=8.0,
    )
)

register(
    Experiment(
        name="network_latency",
        artifact="Extension",
        title="End-to-end latency vs Eyeriss across networks and batch",
        description=(
            "Whole-network execution of one DAISM design next to the "
            "Eyeriss baseline: cycles, ms/image, energy, area and the "
            "cycle ratio, across edge CNNs (LeNet, MobileNet-style "
            "depthwise), VGG-8 and a transformer block, at batch 1 and "
            "batch 64 (the paper's amortisation lever). The *_nn "
            "workloads are the same MobileNet-edge/transformer shapes "
            "traced from the executable nn models instead of the "
            "hand-registered tables (pinned equal by the sync tests)."
        ),
        run=network_latency_point,
        space={
            "network": (
                "lenet",
                "mobilenet_edge",
                "mobilenet_edge_nn",
                "resnet_mini",
                "vgg8",
                "transformer_block",
                "transformer_encoder_nn",
            ),
            "batch": (1, 64),
        },
        defaults={"banks": 16, "bank_kb": 32},
        tags=("extension", "arch"),
        est_seconds=10.0,
    )
)

register(
    Experiment(
        name="fault_sensitivity",
        artifact="Extension",
        title="Multiplier error vs cell-fault and dead-wordline rates",
        description=(
            "Extends the fault ablation to a full rate x dead-row grid on "
            "the vectorized bit-plane readout: extra relative error "
            "(mean/p99/max) and the fraction of affected products, per "
            "fault regime. The scalar row-by-row path computes the same "
            "products bit-identically ~an order of magnitude slower "
            "(tracked in BENCH_perf.json)."
        ),
        run=fault_sensitivity_point,
        space={
            "rate": (0.0, 0.0001, 0.001, 0.01, 0.05),
            "dead_row_rate": (0.0, 0.01),
        },
        defaults={"seeds": 3, "config": "PC3_tr"},
        tags=("extension", "sram"),
        est_seconds=6.0,
    )
)
