"""The eight ablation experiments (beyond-the-figures studies).

Each sweep point is deliberately small — one (design, latency) cell, one
fault rate, one multiplier config, one training arithmetic — so the
runner's process fan-out and per-point cache pay off on the expensive
ablations (fault injection, approximate training, cycle-accurate sims).
"""

from __future__ import annotations

from ..registry import Experiment, register

__all__ = [
    "SPARSITY_LAYER",
    "bandwidth_point",
    "mean_fault_error",
    "faults_point",
    "multiplier_error_point",
    "pc4_point",
    "preload_point",
    "sparsity_input",
    "sparsity_point",
    "training_point",
    "utilization_point",
]

#: The ReLU-fed layer used by the sparsity ablation.
SPARSITY_LAYER = ("relu_fed", 16, 64, 3, 28, 28)


def bandwidth_point(params: dict) -> list[dict]:
    """Cycles/stalls for one (bank geometry, input-delivery latency) cell."""
    from ...arch.scheduler import simulate_layer
    from ...arch.workloads import vgg8_conv1

    banks, pes = (int(v) for v in params["design"].split("x"))
    sim = simulate_layer(vgg8_conv1(), pes, banks, spad_latency=params["latency"])
    return [
        {
            "design": f"{banks} bank(s) x {pes} PEs",
            "delivery latency": params["latency"],
            "cycles": sim.cycles,
            "stall cycles": sim.stall_cycles,
            "utilization": f"{sim.utilization:.3f}",
        }
    ]


def mean_fault_error(rate: float, seed: int) -> float:
    """Mean |faulty - fault-free| / fault-free over a sample grid."""
    import numpy as np

    from ...core.config import PC3_TR
    from ...core.mantissa import approx_multiply
    from ...sram.bank import ComputeBank
    from ...sram.faults import inject_random_faults

    rng = np.random.default_rng(seed)
    values = rng.integers(128, 256, size=(4, 16)).astype(np.uint64)
    operands = rng.integers(128, 256, 12)
    fm = inject_random_faults(256, 256, cell_fault_rate=rate, seed=seed)
    bank = ComputeBank(8 * 1024, PC3_TR, 8, fault_model=fm)
    bank.load_elements(values)
    errs = []
    for b in operands:
        got = bank.multiply_all(int(b)).astype(np.float64)
        want = np.array(
            [[approx_multiply(int(a), int(b), 8, PC3_TR) for a in row] for row in values],
            dtype=np.float64,
        )
        scale = np.where(want == 0, 1.0, want)
        errs.append(np.abs(got - want) / scale)
    return float(np.mean(errs))


def faults_point(params: dict) -> list[dict]:
    """Extra multiplier error at one stuck-at cell fault rate."""
    import numpy as np

    rate = params["rate"]
    mean = float(
        np.mean([mean_fault_error(rate, seed) for seed in range(params["seeds"])])
    )
    return [
        {
            "cell fault rate": f"{rate:.3f}",
            "extra rel. error (mean)": f"{mean:.4f}",
        }
    ]


def multiplier_error_point(params: dict) -> list[dict]:
    """Significand-range error statistics for one multiplier config."""
    from ...core.config import MultiplierConfig
    from ...core.errors import mantissa_error_stats

    config = MultiplierConfig.from_name(params["config"])
    stats = mantissa_error_stats(
        8, config, samples=params["samples"], seed=params["seed"]
    )
    return [
        {
            "config": config.name,
            "mean rel err": f"{stats.mean:.4f}",
            "p99": f"{stats.p99:.4f}",
            "max": f"{stats.max:.4f}",
            "exact products": f"{100 * stats.exact_fraction:.1f}%",
        }
    ]


def pc4_point(params: dict) -> list[dict]:
    """Error/lines/energy for one config of the FLA→PC4 depth sweep."""
    from ...core.config import MultiplierConfig
    from ...core.errors import mantissa_error_stats
    from ...core.mantissa import max_simultaneous_lines
    from ...energy.multiplier_energy import daism_multiplier_energy
    from ...formats.floatfmt import BFLOAT16
    from ...sram.layout import KernelLayout

    config = MultiplierConfig.from_name(params["config"])
    layout = KernelLayout(config, 8)
    stats = mantissa_error_stats(8, config, samples=params["samples"], seed=params["seed"])
    energy = daism_multiplier_energy(config, BFLOAT16, 8 * 1024)
    return [
        {
            "config": config.name,
            "mean rel err": f"{stats.mean:.4f}",
            "logical lines": layout.logical_lines,
            "padded lines": layout.padded_lines,
            "max active lines": max_simultaneous_lines(8, config),
            "energy/comp [pJ]": f"{energy.total_pj:.4f}",
        }
    ]


def preload_point(params: dict) -> list[dict]:
    """Pre-load amortisation per VGG-8 layer at one batch size."""
    from ...arch.daism import DaismDesign
    from ...arch.preload import preload_analysis
    from ...arch.workloads import vgg8_layers

    design = DaismDesign(banks=params["banks"], bank_kb=params["bank_kb"])
    batch = params["batch"]
    rows = []
    for layer in vgg8_layers():
        r = preload_analysis(design, layer, batch=batch)
        rows.append(
            {
                "layer": layer.name,
                "batch": batch,
                "kernel reuse": f"{r.kernel_element_reuse:.0f}",
                "reads/writes": f"{r.read_write_ratio:.1f}",
                "load energy share": f"{100 * r.load_energy_fraction:.1f}%",
            }
        )
    return rows


def sparsity_input(sparsity: float, seed: int = 0):
    """Post-ReLU-like activation tensor with the given zero fraction."""
    import numpy as np

    from ...arch.workloads import ConvLayer

    layer = ConvLayer(*SPARSITY_LAYER)
    rng = np.random.default_rng(seed)
    x = np.abs(rng.standard_normal((layer.in_channels, layer.height, layer.width)))
    threshold = np.quantile(x, sparsity)
    x[x < threshold] = 0.0
    return x.astype(np.float32)


def sparsity_point(params: dict) -> list[dict]:
    """Zero-input-bypass cycles at one input sparsity level."""
    from ...arch.scheduler import simulate_layer
    from ...arch.workloads import ConvLayer

    layer = ConvLayer(*SPARSITY_LAYER)
    pes, banks = params["pes"], params["banks"]
    # The dense baseline is re-simulated per point (~15 ms) so each
    # point stays pure and cacheable on its own parameters; the "vs
    # dense" ratio must not depend on another sweep point's result.
    dense = simulate_layer(layer, pes, banks)
    sparsity = params["sparsity"]
    sim = simulate_layer(
        layer, pes, banks, inputs=sparsity_input(sparsity, seed=params["seed"])
    )
    return [
        {
            "input sparsity": f"{sparsity:.1f}",
            "cycles": sim.cycles,
            "vs dense": f"{sim.cycles / dense.cycles:.2f}x",
            "skipped inputs": sim.skipped_inputs,
            "MACs issued": sim.macs_issued,
        }
    ]


def training_point(params: dict) -> list[dict]:
    """Train the reference MLP under one arithmetic (exact or DAISM)."""
    from ...core.config import PC3_TR
    from ...nn.backend import daism_backend
    from ...nn.data import blobs_dataset
    from ...nn.models import build_mlp
    from ...nn.train import train

    backends = {
        "float32": None,
        "bfloat16 PC3_tr": lambda: daism_backend(PC3_TR),
    }
    label = params["arithmetic"]
    factory = backends[label]
    data = blobs_dataset(n_train=512, n_test=256, spread=2.0, seed=0)
    model = build_mlp(in_features=32, num_classes=4, seed=3)
    result = train(
        model,
        data,
        epochs=params["epochs"],
        batch_size=32,
        lr=0.05,
        seed=0,
        backend=factory() if factory else None,
    )
    return [
        {
            "training arithmetic": label,
            "final loss": f"{result.losses[-1]:.3f}",
            "train acc": f"{result.train_accuracy:.3f}",
            "test acc": f"{result.test_accuracy:.3f}",
        }
    ]


def utilization_point(params: dict) -> list[dict]:
    """Mapper utilisation of one VGG-8 layer across bank geometries."""
    from ...arch.daism import DaismDesign
    from ...arch.workloads import vgg8_layers

    layer = next(l for l in vgg8_layers() if l.name == params["layer"])
    designs = [
        DaismDesign(banks=1, bank_kb=512),
        DaismDesign(banks=4, bank_kb=128),
        DaismDesign(banks=16, bank_kb=32),
        DaismDesign(banks=16, bank_kb=8),
    ]
    row: dict[str, object] = {"layer": layer.name}
    for d in designs:
        m = d.map_conv(layer)
        row[f"{d.banks}x{d.bank_kb}kB util"] = f"{m.utilization:.3f}"
        row[f"{d.banks}x{d.bank_kb}kB cyc"] = m.cycles
    return [row]


register(
    Experiment(
        name="ablation_bandwidth",
        artifact="Ablation",
        title="Cycles vs input-delivery latency (VGG-8 conv1)",
        description=(
            "If the scratchpad bus delivers an input only every N cycles per "
            "bank, thin-work banked designs stall: quantifies where the "
            "paper's one-input-per-cycle assumption stops being free."
        ),
        run=bandwidth_point,
        space={"design": ("1x128", "4x64", "16x16"), "latency": (1, 2, 4, 8)},
        tags=("ablation", "arch"),
        est_seconds=1.0,
    )
)

register(
    Experiment(
        name="ablation_faults",
        artifact="Ablation",
        title="PC3_tr multiplier error under stuck-at cell faults",
        description=(
            "Structural multiplier relative error as stuck-at SRAM cell "
            "faults are injected on top of the intrinsic OR-approximation."
        ),
        run=faults_point,
        space={"rate": (0.0, 0.001, 0.01, 0.05)},
        defaults={"seeds": 3},
        tags=("ablation", "sram"),
        est_seconds=1.0,
    )
)

register(
    Experiment(
        name="ablation_multiplier_error",
        artifact="Ablation",
        title="bfloat16 significand multiplier error (implicit-one range)",
        description=(
            "Mean/p99/max relative error and exactly-computed product "
            "fraction per multiplier configuration (Sec. V-D ordering)."
        ),
        run=multiplier_error_point,
        space={"config": ("FLA", "PC2", "PC3", "PC2_tr", "PC3_tr")},
        defaults={"samples": 1 << 15, "seed": 0},
        tags=("ablation", "core"),
        est_seconds=2.0,
    )
)

register(
    Experiment(
        name="ablation_pc4",
        artifact="Ablation",
        title="Pre-computation depth sweep (FLA -> PC2 -> PC3 -> PC4)",
        description=(
            "Extends Table I with PC4: accuracy keeps improving but each "
            "step doubles the combination lines while energy barely moves — "
            "why 'PC3 is the best choice' holds."
        ),
        run=pc4_point,
        space={"config": ("FLA", "PC2", "PC3", "PC2_tr", "PC3_tr", "PC4", "PC4_tr")},
        defaults={"samples": 1 << 14, "seed": 0},
        tags=("ablation", "core"),
        est_seconds=3.0,
    )
)

register(
    Experiment(
        name="ablation_preload",
        artifact="Ablation",
        title="Pre-load amortisation per VGG-8 layer (16x8kB)",
        description=(
            "Where 'the cost of pre-loading data is made negligible by the "
            "large operands reuse' stops being true (the FC tail at batch 1) "
            "and how batching restores it."
        ),
        run=preload_point,
        space={"batch": (1, 64)},
        defaults={"banks": 16, "bank_kb": 8},
        tags=("ablation", "arch"),
        est_seconds=4.0,
    )
)

register(
    Experiment(
        name="ablation_sparsity",
        artifact="Ablation",
        title="Cycles vs input sparsity (zero-input bypass, 16x32-PE banks)",
        description=(
            "What word-granular zero skipping buys DAISM: cycle-accurate "
            "scheduler cycles versus post-ReLU input sparsity."
        ),
        run=sparsity_point,
        space={"sparsity": (0.0, 0.3, 0.5, 0.7, 0.9)},
        defaults={"pes": 32, "banks": 16, "seed": 0},
        tags=("ablation", "arch"),
        est_seconds=1.0,
    )
)

register(
    Experiment(
        name="ablation_training",
        artifact="Ablation",
        title="Training under approximate arithmetic (fwd + bwd GEMMs)",
        description=(
            "The title claim: the same MLP trained under exact float32 and "
            "under the DAISM bfloat16 PC3_tr backend, compared on accuracy."
        ),
        run=training_point,
        space={"arithmetic": ("float32", "bfloat16 PC3_tr")},
        defaults={"epochs": 8},
        tags=("ablation", "nn", "slow"),
        est_seconds=5.0,
    )
)

register(
    Experiment(
        name="ablation_utilization",
        artifact="Ablation",
        title="Utilisation per VGG-8 layer and bank geometry",
        description=(
            "Which layers map well onto which bank geometries and where the "
            "single-bank penalty comes from (Sec. V-C2 on the whole network)."
        ),
        run=utilization_point,
        space={
            "layer": ("conv1", "conv2", "conv3", "conv4", "conv5", "fc1", "fc2", "fc3")
        },
        tags=("ablation", "arch"),
        est_seconds=5.0,
    )
)
