"""Scheduling experiment (``trace_replay``): the co-sim in the serving loop.

One deterministic Poisson+burst arrival trace
(:func:`repro.runtime.serving_bench.generate_trace`) is replayed through
an analytic discrete-event simulation of the serving loop — coalescing
micro-batcher, SLA admission control, one accelerator — where service
time and energy come from the same :class:`~repro.runtime.scheduler.CostSurface`
the online scheduler uses (``batch_cycles`` / ``clock_hz``; no wall
clock anywhere, so the rows are bit-reproducible).  Every DSE grid
design serves the trace twice — once under today's static knobs, once
under the cost-model :class:`~repro.runtime.scheduler.SchedulingPolicy`
— and each policy arm's designs are Pareto-marked on
(p99 latency, energy per good sample, goodput).

The simulation runs in-process because the experiment engine's pool
workers are daemonic and cannot fork a real worker fleet; the live
counterpart of this experiment is ``python -m repro trace-replay``
(:func:`repro.runtime.serving_bench.replay_trace_benchmark`), which
drives actual processes and additionally asserts per-request byte
parity between the two arms.  Here the correction EWMA is seeded to
exactly 1 (simulated time *is* model time), so the rows isolate the
decision logic from host calibration.

Offered load, SLA and phase length all derive from the design's own
full-batch capacity (``stress`` x capacity, ``1.25`` x full-batch
service, ``duration / 8``), so every design is equally stressed and the
comparison is scale-free across clock rates and grid points.
"""

from __future__ import annotations

from ..registry import Experiment, register

__all__ = ["trace_replay_point"]


def _percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def _simulate_arm(surface, policy, trace, request_samples: int, sla_ms: float) -> dict:
    """Discrete-event replay of one trace under one policy arm.

    Single accelerator, FIFO coalescing up to the policy's batch
    decision, SLA admission identical in shape to the fleet's
    (``wait + pending x per-sample estimate``).  Returns latency,
    shed/goodput counts and energy for the arm.
    """
    R = request_samples

    def ms_batch(samples: int) -> float:
        return surface.batch_cycles(samples) / surface.clock_hz * 1e3

    arrivals = [e["t"] * 1e3 for e in trace]  # ms timeline
    n = len(arrivals)
    free_at = 0.0
    pending: list[float] = []  # arrival times of accepted, waiting requests
    lats: list[float] = []
    shed = 0
    energy_uj = 0.0
    i = 0

    def admit(t_a: float) -> None:
        nonlocal shed
        est = policy.admission_ms_per_sample((len(pending) + 1) * R)
        waited = max(free_at - t_a, 0.0)
        predicted = waited + (len(pending) + 1) * R * (est or 0.0)
        if predicted > sla_ms:
            shed += 1
        else:
            pending.append(t_a)

    while i < n or pending:
        if not pending:
            admit(arrivals[i])
            i += 1
            continue
        decision = policy.batch_decision(len(pending) * R)
        cap_req = max(1, decision.max_batch // R)
        if len(pending) >= cap_req:
            t_dispatch = max(free_at, pending[cap_req - 1])
        else:
            t_dispatch = max(free_at, pending[0] + decision.max_delay_ms)
        if i < n and arrivals[i] <= t_dispatch:
            # An arrival lands before the batch would go: admit it first
            # (it may fill the batch and move the dispatch earlier).
            admit(arrivals[i])
            i += 1
            continue
        take = min(len(pending), cap_req)
        batch, pending = pending[:take], pending[take:]
        samples = take * R
        t_end = t_dispatch + ms_batch(samples)
        lats.extend(t_end - t_a for t_a in batch)
        energy_uj += samples * surface.energy_uj_per_sample
        free_at = t_end

    good_requests = sum(1 for latency in lats if latency <= sla_ms)
    lats.sort()
    return {
        "requests": n,
        "accepted": n - shed,
        "shed": shed,
        "good_requests": good_requests,
        "good_samples": good_requests * R,
        "p50_ms": _percentile(lats, 0.50),
        "p99_ms": _percentile(lats, 0.99),
        "energy_uj": energy_uj,
    }


def trace_replay_point(params: dict) -> list[dict]:
    """Static vs cost-model rows for one model across the DSE grid."""
    from ...arch.daism import DaismDesign
    from ...runtime.scheduler import CostSurface, SchedulingPolicy
    from ...runtime.serving_bench import generate_trace

    model = params["model"]
    R = int(params["request_samples"])
    max_batch = int(params["max_batch"])
    stress = float(params["stress"])
    rows: list[dict] = []
    for banks in params["banks_grid"]:
        for bank_kb in params["bank_kb_grid"]:
            design = DaismDesign(banks=banks, bank_kb=bank_kb)
            surface = CostSurface.from_zoo(model, design=design)
            ms_full = surface.batch_cycles(max_batch) / surface.clock_hz * 1e3
            capacity_sps = max_batch / ms_full * 1e3
            offered_rps = stress * capacity_sps / R
            sla_ms = 1.25 * ms_full
            duration_s = params["n_requests"] / offered_rps
            trace = generate_trace(
                [model],
                duration_s,
                offered_rps,
                burst_multiplier=params["burst_multiplier"],
                phase_s=duration_s / 8.0,
                seed=params["seed"],
            )
            for mode in ("static", "cost_model"):
                policy = SchedulingPolicy(
                    surface,
                    mode=mode,
                    sla_ms=sla_ms,
                    max_batch=max_batch,
                    max_delay_ms=params["delay_fraction"] * sla_ms,
                )
                # Simulated time *is* model time: calibration ratio 1.
                policy.seed_correction(
                    max_batch, surface.model_ms_per_sample(max_batch) * max_batch
                )
                arm = _simulate_arm(surface, policy, trace, R, sla_ms)
                good = arm["good_samples"]
                rows.append(
                    {
                        "model": model,
                        "design": f"{banks}x{bank_kb}kB",
                        "banks": banks,
                        "bank_kb": bank_kb,
                        "policy": mode,
                        "sla_ms": round(sla_ms, 4),
                        "offered_rps": round(offered_rps, 1),
                        "requests": arm["requests"],
                        "shed": arm["shed"],
                        "p50_ms": round(arm["p50_ms"], 4),
                        "p99_ms": round(arm["p99_ms"], 4),
                        "goodput_sps": round(good / duration_s, 1),
                        "energy_uj_per_good_sample": (
                            round(arm["energy_uj"] / good, 4) if good else None
                        ),
                        "sched_events": len(policy.events()),
                    }
                )
    # Pareto front per policy arm over the design grid:
    # (p99 latency down, energy per good sample down, goodput up).
    for mode in ("static", "cost_model"):
        arm_rows = [
            r
            for r in rows
            if r["policy"] == mode and r["energy_uj_per_good_sample"] is not None
        ]
        for r in rows:
            if r["policy"] != mode:
                continue
            if r["energy_uj_per_good_sample"] is None:
                r["pareto"] = False
                continue
            r["pareto"] = not any(
                o is not r
                and o["p99_ms"] <= r["p99_ms"]
                and o["energy_uj_per_good_sample"] <= r["energy_uj_per_good_sample"]
                and o["goodput_sps"] >= r["goodput_sps"]
                and (
                    o["p99_ms"] < r["p99_ms"]
                    or o["energy_uj_per_good_sample"] < r["energy_uj_per_good_sample"]
                    or o["goodput_sps"] > r["goodput_sps"]
                )
                for o in arm_rows
            )
    return rows


register(
    Experiment(
        name="trace_replay",
        artifact="Extension",
        title="Trace replay: static vs cost-model scheduling across DSE designs",
        description=(
            "Replays one deterministic Poisson+burst trace through a "
            "discrete-event serving simulation whose latency/energy come "
            "from the co-sim cost surface, for every DSE grid design, "
            "under both scheduling policies. Rows carry goodput under a "
            "capacity-derived SLA, p50/p99 latency, energy per good "
            "sample and a per-arm Pareto mark; the live multi-process "
            "counterpart (with byte-parity assertions) is `python -m "
            "repro trace-replay`."
        ),
        run=trace_replay_point,
        space={"model": ("lenet", "mobilenet_edge", "transformer_encoder")},
        defaults={
            "banks_grid": (4, 16, 32),
            "bank_kb_grid": (8, 32),
            "n_requests": 2000,
            "stress": 1.5,
            "burst_multiplier": 4.0,
            "request_samples": 4,
            "max_batch": 16,
            "delay_fraction": 0.25,
            "seed": 0,
        },
        tags=("extension", "runtime", "scheduling"),
        est_seconds=8.0,
    )
)
