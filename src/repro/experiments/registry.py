"""Experiment registry: every paper artefact as a named, composable unit.

Each figure, table and ablation of the DAISM paper registers itself here
as an :class:`Experiment`: a name, a declarative sweep space, and a pure
``run(params) -> rows`` function over **one** sweep point.  The runner
(:mod:`repro.experiments.runner`) expands the space into points, fans the
points out over worker processes, and caches each point's rows on disk
(:mod:`repro.experiments.cache`).

Because ``run`` receives only JSON-serialisable parameters (strings,
ints, floats, bools) and returns JSON-serialisable rows, every sweep
point is trivially picklable for :mod:`multiprocessing` and hashable for
the content-addressed result cache.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Callable, Mapping, Sequence

__all__ = [
    "Experiment",
    "all_experiments",
    "experiment_names",
    "get_experiment",
    "load_builtin",
    "register",
    "unregister",
]

#: Global name -> Experiment table populated by :func:`register`.
_REGISTRY: dict[str, "Experiment"] = {}


@dataclasses.dataclass(frozen=True)
class Experiment:
    """One registered paper artefact (figure, table, ablation, extension).

    Parameters
    ----------
    name:
        Unique CLI-facing identifier, e.g. ``"fig5_energy_breakdown"``.
    artifact:
        The paper artefact reproduced, e.g. ``"Fig. 5"`` or ``"Table II"``.
    title:
        Human-readable headline used when rendering the result.
    description:
        One paragraph on what the experiment shows.
    run:
        Pure function mapping one sweep point (a flat ``dict`` of
        JSON-serialisable parameters) to a list of row dicts.  It must be
        a module-level function so sweep points can be dispatched to
        worker processes.
    space:
        Ordered sweep axes: parameter name -> tuple of values.  The
        runner executes the cartesian product of all axes; an empty space
        means a single point.
    defaults:
        Fixed parameters merged into every point (and into the cache
        key, so changing a default invalidates cached rows).
    tags:
        Free-form labels (``"figure"``, ``"ablation"``, ...) used for
        grouping in listings.
    est_seconds:
        Rough serial wall-clock estimate for the full sweep, shown in
        listings so users know what they are about to run.
    """

    name: str
    artifact: str
    title: str
    description: str
    run: Callable[[dict], list[dict]]
    space: Mapping[str, Sequence[object]] = dataclasses.field(default_factory=dict)
    defaults: Mapping[str, object] = dataclasses.field(default_factory=dict)
    tags: tuple[str, ...] = ()
    est_seconds: float = 1.0

    def points(self, overrides: Mapping[str, object] | None = None) -> list[dict]:
        """Expand the sweep space into concrete parameter points.

        ``overrides`` replaces sweep axes (pinning an axis to one value)
        and/or default parameters; unknown keys raise ``KeyError`` so
        typos fail loudly instead of silently sweeping the wrong grid.
        """
        overrides = dict(overrides or {})
        space: dict[str, Sequence[object]] = {}
        defaults = dict(self.defaults)
        for key, values in self.space.items():
            if key in overrides:
                pinned = overrides.pop(key)
                space[key] = pinned if isinstance(pinned, (list, tuple)) else (pinned,)
            else:
                space[key] = tuple(values)
        for key in list(overrides):
            if key not in defaults:
                known = sorted(set(self.space) | set(defaults))
                raise KeyError(
                    f"{self.name}: unknown parameter {key!r}; known parameters: {known}"
                )
            defaults[key] = overrides.pop(key)
        if not space:
            return [dict(defaults)]
        axes = list(space)
        return [
            {**defaults, **dict(zip(axes, combo))}
            for combo in itertools.product(*(space[a] for a in axes))
        ]


def register(experiment: Experiment) -> Experiment:
    """Add ``experiment`` to the global registry (unique names enforced)."""
    if experiment.name in _REGISTRY:
        raise ValueError(f"experiment {experiment.name!r} is already registered")
    _REGISTRY[experiment.name] = experiment
    return experiment


def unregister(name: str) -> None:
    """Remove one experiment from the registry (used by tests)."""
    _REGISTRY.pop(name, None)


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment by name.

    Raises ``KeyError`` with the sorted list of known names so the CLI
    error message doubles as discovery.
    """
    load_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(experiment_names())}"
        ) from None


def experiment_names() -> list[str]:
    """Sorted names of all registered experiments."""
    load_builtin()
    return sorted(_REGISTRY)


def all_experiments() -> list[Experiment]:
    """All registered experiments, sorted by name."""
    load_builtin()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def load_builtin() -> None:
    """Import the built-in experiment definitions (idempotent).

    The defs modules register themselves at import time; importing here
    rather than at package import keeps ``import repro`` light.
    """
    from . import defs  # noqa: F401
