"""Unified experiment engine: every paper artefact as a runnable unit.

The subsystem that turns the repo's 18 standalone benchmark scripts into
one engine (see ``DESIGN.md`` / ``EXPERIMENTS.md``):

* :mod:`~repro.experiments.registry` — each figure/table/ablation
  registers a name, a sweep space and a pure ``run(params) -> rows``;
* :mod:`~repro.experiments.runner` — ``multiprocessing`` fan-out over
  sweep points, deterministic row order, per-point caching;
* :mod:`~repro.experiments.cache` — content-addressed on-disk result
  cache keyed by code fingerprint + experiment + parameters;
* :mod:`~repro.experiments.report` — plain-text rendering plus CSV/JSON
  artefact and manifest writing;
* :mod:`~repro.experiments.defs` — the built-in definitions (Fig. 4–8,
  Tables I–III, eight ablations, two extensions).

Driven from the CLI as ``python -m repro reproduce --list`` /
``reproduce <name> [--workers N] [--no-cache] [--out DIR]``.
"""

from .cache import ResultCache, cache_key, code_fingerprint, default_cache_dir
from .registry import (
    Experiment,
    all_experiments,
    experiment_names,
    get_experiment,
    load_builtin,
    register,
    unregister,
)
from .report import render_result, write_rows_csv, write_rows_json, write_run
from .runner import RunResult, experiment_rows, run_experiment

__all__ = [
    "Experiment",
    "ResultCache",
    "RunResult",
    "all_experiments",
    "cache_key",
    "code_fingerprint",
    "default_cache_dir",
    "experiment_names",
    "experiment_rows",
    "get_experiment",
    "load_builtin",
    "register",
    "render_result",
    "run_experiment",
    "unregister",
    "write_rows_csv",
    "write_rows_json",
    "write_run",
]
