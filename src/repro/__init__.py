"""repro — reproduction of DAISM (DATE 2024).

DAISM: Digital Approximate In-SRAM Multiplier-based Accelerator for DNN
Training and Inference (Sonnino, Shresthamali, He, Kondo).

Subpackages
-----------
``repro.core``
    The in-SRAM approximate multiplier (FLA/PC2/PC3, truncated variants),
    the approximate FP pipeline and GEMM backends.
``repro.formats``
    Floating point formats (float32/bfloat16/custom) and block FP.
``repro.sram``
    Bit-level SRAM substrate: multi-wordline wired-OR array, address
    decoders, kernel line layout, structural multiplier simulation.
``repro.energy``
    CACTI-lite SRAM model, 45 nm component library, per-computation
    energy models (Fig. 5/6).
``repro.arch``
    DAISM accelerator model, Eyeriss-class baseline, PIM comparators,
    design-space exploration (Fig. 7/8, Tables II/III).
``repro.nn``
    Pure-numpy DNN framework with pluggable matmul backends (Fig. 4).
``repro.runtime``
    Compiled inference runtime: execution plans with pre-resolved
    kernels and pre-packed weights, the shard-parallel batch engine,
    and the micro-batching serving frontend (``python -m repro
    serve-bench``).
``repro.analysis``
    Reporting and sweep helpers shared by the benchmarks.
``repro.experiments``
    Unified experiment engine: every figure/table/ablation registered as
    a named, parallel-sweepable, cached experiment, driven by
    ``python -m repro reproduce``.
"""

from . import core, formats
from .core import (
    FLA,
    PC2,
    PC2_TR,
    PC3,
    PC3_TR,
    ApproxMatmul,
    ExactMatmul,
    MultiplierConfig,
    QuantizedMatmul,
    all_configs,
    approx_fp_multiply,
    approx_matmul,
    approx_multiply,
    exact_fp_multiply,
)
from .formats import BFLOAT16, FLOAT16, FLOAT32, FloatFormat, quantize

__version__ = "1.0.0"

__all__ = [
    "FLA",
    "PC2",
    "PC3",
    "PC2_TR",
    "PC3_TR",
    "MultiplierConfig",
    "all_configs",
    "ApproxMatmul",
    "ExactMatmul",
    "QuantizedMatmul",
    "approx_fp_multiply",
    "exact_fp_multiply",
    "approx_matmul",
    "approx_multiply",
    "BFLOAT16",
    "FLOAT16",
    "FLOAT32",
    "FloatFormat",
    "quantize",
    "__version__",
]
