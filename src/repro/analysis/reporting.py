"""Plain-text table/series rendering shared by benchmarks and examples.

The paper's figures are regenerated as printed series (this environment
has no plotting); every benchmark prints the same rows/series the paper
plots, so shapes can be compared directly.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_range", "format_series", "title", "bar_chart"]


def format_range(value: object, digits: int = 2) -> str:
    """Render scalars and (low, high) ranges uniformly."""
    if isinstance(value, tuple) and len(value) == 2:
        low, high = value
        if abs(float(low) - float(high)) < 10 ** (-digits):
            return f"{float(low):.{digits}f}"
        return f"{float(low):.{digits}f}~{float(high):.{digits}f}"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def format_table(rows: Sequence[dict], digits: int = 2) -> str:
    """Align a list of dict rows into a printable table."""
    if not rows:
        return "(empty table)"
    columns = list(rows[0].keys())
    rendered = [[format_range(row.get(col, ""), digits) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = [
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered)
    return "\n".join(lines)


def format_series(name: str, points: Sequence[tuple[object, float]], digits: int = 4) -> str:
    """One figure series as ``name: x=y`` pairs."""
    body = "  ".join(f"{x}={y:.{digits}g}" for x, y in points)
    return f"{name}: {body}"


def title(text: str) -> str:
    """Underlined section title."""
    return f"\n{text}\n{'=' * len(text)}"


def bar_chart(
    items: Sequence[tuple[str, float]], width: int = 50, unit: str = ""
) -> str:
    """Horizontal ASCII bar chart (the offline stand-in for a figure).

    Bars are scaled to the largest value; labels are right-padded and
    values printed after each bar.
    """
    if not items:
        return "(empty chart)"
    peak = max(value for _label, value in items)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _value in items)
    lines = []
    for label, value in items:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.4g}{unit}")
    return "\n".join(lines)
