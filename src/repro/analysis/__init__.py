"""Reporting and sweep helpers shared by benchmarks and examples."""

from .reporting import format_range, format_series, format_table, title
from .sweeps import fig5_rows, fig6_rows, registered_rows

__all__ = [
    "format_range",
    "format_series",
    "format_table",
    "title",
    "fig5_rows",
    "fig6_rows",
    "registered_rows",
]
