"""Parameter-sweep helpers shared by the energy/architecture benchmarks.

:func:`fig5_rows` / :func:`fig6_rows` are the in-process row builders the
corresponding experiments decompose into per-point calls; use
:func:`registered_rows` (or ``python -m repro reproduce``) to run any
registered experiment's full sweep through the engine instead — with
parallel fan-out and result caching.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..core.config import MultiplierConfig, all_configs
from ..energy.cacti_lite import CactiLite
from ..energy.multiplier_energy import (
    baseline_multiplier_energy,
    daism_multiplier_energy,
    energy_improvement_with_exponent,
)
from ..formats.floatfmt import BFLOAT16, FLOAT32, FloatFormat

__all__ = ["fig5_rows", "fig6_rows", "registered_rows"]


def registered_rows(
    name: str, overrides: Mapping[str, object] | None = None
) -> list[dict]:
    """Rows of a registered experiment's full sweep (serial, uncached).

    Parameters
    ----------
    name:
        Experiment name from ``python -m repro reproduce --list``.
    overrides:
        Optional sweep-axis pins / default-parameter replacements.
    """
    from ..experiments import experiment_rows

    return experiment_rows(name, overrides=overrides)


def fig5_rows(
    bank_kbs: tuple[int, ...] = (8, 32),
    fmts: tuple[FloatFormat, ...] = (BFLOAT16, FLOAT32),
    configs: tuple[MultiplierConfig, ...] | None = None,
    cacti: CactiLite | None = None,
) -> list[dict[str, object]]:
    """The Fig. 5 grid: energy breakdown per config x datatype x bank size."""
    cacti = cacti or CactiLite()
    configs = configs or all_configs()
    rows: list[dict[str, object]] = []
    for fmt in fmts:
        for kb in bank_kbs:
            base = baseline_multiplier_energy(fmt, kb * 1024, cacti=cacti)
            rows.append(
                {
                    "datatype": fmt.name,
                    "bank": f"{kb}kB",
                    "design": "baseline",
                    "memory_read": base.parts["operand_reads"],
                    "multiplier": base.parts["multiplier"],
                    "register_file": 0.0,
                    "decoder": 0.0,
                    "total_pj": base.total_pj,
                }
            )
            for config in configs:
                bd = daism_multiplier_energy(config, fmt, kb * 1024, cacti)
                rows.append(
                    {
                        "datatype": fmt.name,
                        "bank": f"{kb}kB",
                        "design": config.name,
                        "memory_read": bd.parts["memory_read"],
                        "multiplier": 0.0,
                        "register_file": bd.parts["register_file"],
                        "decoder": bd.parts["decoder"],
                        "total_pj": bd.total_pj,
                    }
                )
    return rows


def fig6_rows(
    bank_kbs: tuple[int, ...] = (2, 8, 32, 128, 512),
    fmts: tuple[FloatFormat, ...] = (BFLOAT16, FLOAT32),
    config: MultiplierConfig | None = None,
    cacti: CactiLite | None = None,
) -> list[dict[str, object]]:
    """Fig. 6: PC3_tr relative improvement incl. exponent handling."""
    from ..core.config import PC3_TR

    cacti = cacti or CactiLite()
    config = config or PC3_TR
    rows: list[dict[str, object]] = []
    for fmt in fmts:
        for kb in bank_kbs:
            rows.append(
                {
                    "datatype": fmt.name,
                    "bank": f"{kb}kB",
                    "config": config.name,
                    "improvement_x": energy_improvement_with_exponent(
                        config, fmt, kb * 1024, cacti
                    ),
                }
            )
    return rows
